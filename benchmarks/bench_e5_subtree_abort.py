"""E5 — Section 5's product-of-products: one zero aborts *both*
concurrent branches (subtree abort, the thing Section 3 shows
traditional continuations cannot express).

Claims reproduced:

* total work ≈ work until the first zero is found, regardless of the
  sibling's list length — the sibling is killed mid-traversal;
* cost is symmetric in which list carries the zero.
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from benchmarks.conftest import scheme_list

LENGTH = 300


def fresh() -> Interpreter:
    interp = Interpreter(quantum=4)
    interp.load_paper_example("product-of-products-spawn")
    return interp


def steps(ls1: list[int], ls2: list[int]) -> int:
    interp = fresh()
    before = interp.machine.steps_total
    interp.eval(
        f"(product-of-products/spawn '{scheme_list(ls1)} '{scheme_list(ls2)})"
    )
    return interp.machine.steps_total - before


def test_e5_shape_one_zero_kills_both_branches():
    ones = [1] * LENGTH
    zero_front = [0] + [1] * (LENGTH - 1)
    clean = steps(ones, ones)
    zero_in_first = steps(zero_front, ones)
    zero_in_second = steps(ones, zero_front)
    print("\nE5  product-of-products/spawn (machine steps, length", LENGTH, ")")
    print(f"  no zeros:          {clean}")
    print(f"  zero in list 1:    {zero_in_first}")
    print(f"  zero in list 2:    {zero_in_second}")
    # A front zero kills everything early: both traversals abandoned.
    assert zero_in_first < 0.25 * clean
    assert zero_in_second < 0.25 * clean
    # Symmetry within scheduling noise (one quantum's skew).
    assert abs(zero_in_first - zero_in_second) < 0.3 * clean


def test_e5_abort_cost_independent_of_sibling_progress():
    """Zero at the end of a short list vs a zero amid a long sibling:
    the captured-and-dropped subtree's size does not matter, only the
    control points — abort cost stays flat as the sibling's remaining
    work grows."""
    rows = []
    for sibling_len in (50, 150, 300):
        ones = [1] * sibling_len
        zero = [0]
        rows.append((sibling_len, steps(zero, ones)))
    print("\nE5  abort cost vs sibling length (machine steps)")
    for sibling_len, cost in rows:
        print(f"  sibling length {sibling_len:4d}: {cost}")
    # Sibling runs interleaved until the zero branch reaches its zero —
    # which happens in a handful of steps — so total cost is flat-ish:
    assert rows[-1][1] < rows[0][1] * 3


@pytest.mark.parametrize("zero_in", ["none", "first", "second"])
def test_e5_product_of_products_timing(benchmark, zero_in):
    interp = fresh()
    ones = [1] * LENGTH
    zero_front = [0] + [1] * (LENGTH - 1)
    ls1 = zero_front if zero_in == "first" else ones
    ls2 = zero_front if zero_in == "second" else ones
    source = (
        f"(product-of-products/spawn '{scheme_list(ls1)} '{scheme_list(ls2)})"
    )
    expected = 0 if zero_in != "none" else 1

    result = benchmark(lambda: interp.eval(source))
    assert result == expected
