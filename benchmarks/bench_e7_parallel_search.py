"""E7 — Section 5's parallel-search / search-all.

Claims reproduced:

* first hit arrives long before a full traversal when matches are
  dense (suspend-on-hit);
* search-all's total cost grows with match count (one suspend/resume
  cycle per match) plus one full traversal;
* results are complete regardless of tree shape.
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from benchmarks.conftest import scheme_list

SIZE = 127  # a full 7-level BST when built from a balanced insert order


def balanced_order(lo: int, hi: int) -> list[int]:
    if lo > hi:
        return []
    mid = (lo + hi) // 2
    return [mid] + balanced_order(lo, mid - 1) + balanced_order(mid + 1, hi)


def fresh() -> Interpreter:
    interp = Interpreter(quantum=4)
    interp.load_paper_example("search-all")
    order = balanced_order(1, SIZE)
    interp.run(f"(define t (list->tree '{scheme_list(order)}))")
    return interp


def steps(interp: Interpreter, expr: str) -> int:
    before = interp.machine.steps_total
    interp.eval(expr)
    return interp.machine.steps_total - before


def test_e7_shape_first_hit_beats_full_scan():
    interp = fresh()
    first_hit = steps(interp, "(parallel-search t even?)")
    no_hit = steps(fresh(), "(parallel-search t (lambda (x) (> x 1000)))")
    print("\nE7  parallel-search on a", SIZE, "node tree (machine steps)")
    print(f"  first even hit:     {first_hit}")
    print(f"  exhaustive no-hit:  {no_hit}")
    assert first_hit < 0.7 * no_hit


def test_e7_search_all_cost_scales_with_match_density():
    rows = []
    for name, predicate in [
        ("none", "(lambda (x) (> x 1000))"),
        ("sparse (x%16=0)", "(lambda (x) (= (modulo x 16) 0))"),
        ("half (even)", "even?"),
        ("all", "(lambda (x) #t)"),
    ]:
        interp = fresh()
        cost = steps(interp, f"(search-all t {predicate})")
        rows.append((name, cost))
    print("\nE7  search-all cost vs match density (machine steps)")
    for name, cost in rows:
        print(f"  {name:18s}: {cost}")
    costs = [cost for _, cost in rows]
    assert costs[0] < costs[1] < costs[2] < costs[3]


def test_e7_search_all_completeness():
    interp = fresh()
    found = interp.eval_to_string("(search-all t even?)")
    values = sorted(int(x) for x in found.strip("()").split())
    assert values == [x for x in range(1, SIZE + 1) if x % 2 == 0]


@pytest.mark.parametrize("predicate", ["even?", "(lambda (x) (= x 64))"])
def test_e7_search_all_timing(benchmark, predicate):
    interp = fresh()
    source = f"(length (search-all t {predicate}))"

    result = benchmark(lambda: interp.eval(source))
    assert result >= 1


def test_e7_suspension_preserves_sibling_progress():
    """Between two resumes, untouched branches do not restart: total
    steps across the whole search-all stay linear-ish in tree size
    times match count, not quadratic."""
    small = Interpreter(quantum=4)
    small.load_paper_example("search-all")
    small.run(f"(define t (list->tree '{scheme_list(balanced_order(1, 31))}))")
    small_cost = steps(small, "(search-all t even?)")
    big = fresh()
    big_cost = steps(big, "(search-all t even?)")
    ratio = big_cost / small_cost
    print(f"\nE7  search-all scaling: 31→{SIZE} nodes gives ratio {ratio:.1f}")
    # 4x nodes and 4x matches: allow generous headroom; quadratic
    # restarting behaviour would give ratio >= 16.
    assert ratio < 14
