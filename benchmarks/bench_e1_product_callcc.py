"""E1 — Section 3's product: early exit via call/cc.

Claim reproduced: with a zero in the list, the continuation-based exit
avoids the remaining traversal *and all multiplications*, so cost is
governed by the zero's position, not the list length.

Rows printed: zero position sweep at fixed length; the machine step
counts make the shape exact and noise-free, and wall-clock timings back
them up.
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from benchmarks.conftest import scheme_list

LENGTH = 400


def fresh() -> Interpreter:
    interp = Interpreter()
    interp.load_paper_example("product-callcc")
    return interp


def steps_for(zero_at: int | None) -> int:
    interp = fresh()
    values = [2] * LENGTH
    if zero_at is not None:
        values[zero_at] = 0
    before = interp.machine.steps_total
    interp.eval(f"(product '{scheme_list(values)})")
    return interp.machine.steps_total - before


def test_e1_shape_early_exit_beats_full_product():
    """The headline shape: steps grow with zero position; a zero at the
    front costs a small fraction of the zero-free traversal."""
    no_zero = steps_for(None)
    front = steps_for(0)
    middle = steps_for(LENGTH // 2)
    back = steps_for(LENGTH - 1)
    print("\nE1  zero-position sweep (machine steps, length", LENGTH, ")")
    print(f"  zero at 0:      {front}")
    print(f"  zero at n/2:    {middle}")
    print(f"  zero at n-1:    {back}")
    print(f"  no zero:        {no_zero}")
    assert front < middle < back
    assert front * 10 < no_zero  # early exit saves ~everything
    # The exit also skips the pending multiplications of the prefix:
    # cost at n-1 stays below the full product's cost.
    assert back < no_zero


@pytest.mark.parametrize("zero_at", [0, LENGTH // 2, None])
def test_e1_product_timing(benchmark, zero_at):
    interp = fresh()
    values = [2] * LENGTH
    if zero_at is not None:
        values[zero_at] = 0
    source = f"(product '{scheme_list(values)})"
    expected = 0 if zero_at is not None else 2**LENGTH

    result = benchmark(lambda: interp.eval(source))
    assert result == expected
