"""Supplementary — raw interpreter throughput on classic workloads.

Not a paper claim: a baseline so regressions in the machine (which
every E-experiment runs on) are visible.  Standard tiny benchmarks:
fib, tak, list-heavy code, deep mutual recursion, and their pcall
variants.
"""

from __future__ import annotations

import pytest

from repro import Interpreter

WORKLOADS = {
    "fib-15": ("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))", "(fib 15)", 610),
    "tak-12-8-4": (
        """
        (define (tak x y z)
          (if (not (< y x))
              z
              (tak (tak (- x 1) y z)
                   (tak (- y 1) z x)
                   (tak (- z 1) x y))))
        """,
        "(tak 12 8 4)",
        5,
    ),
    "list-ops": (
        "",
        "(length (reverse (append (iota 300) (map add1 (iota 300)))))",
        600,
    ),
    "mutual-recursion": (
        """
        (define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
        (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
        """,
        "(even2? 20000)",
        True,
    ),
    "pfib-10": (
        "(define (pfib n) (if (< n 2) n (pcall + (pfib (- n 1)) (pfib (- n 2)))))",
        "(pfib 10)",
        55,
    ),
    "vector-sieve": (
        """
        (define (sieve n)
          (let ([v (make-vector n #t)])
            (let loop ([i 2] [count 0])
              (cond
                [(>= i n) count]
                [(vector-ref v i)
                 (let mark ([j (* i i)])
                   (when (< j n)
                     (vector-set! v j #f)
                     (mark (+ j i))))
                 (loop (+ i 1) (+ count 1))]
                [else (loop (+ i 1) count)]))))
        """,
        "(sieve 500)",
        95,
    ),
}


@pytest.mark.parametrize("engine", ["resolved", "dict"], ids=["resolved", "dict"])
@pytest.mark.parametrize("name", list(WORKLOADS))
def test_baseline_timing(benchmark, name, engine):
    setup, expr, expected = WORKLOADS[name]
    interp = Interpreter(engine=engine)
    if setup:
        interp.run(setup)

    result = benchmark(lambda: interp.eval(expr))
    if isinstance(expected, bool):
        assert result is expected
    else:
        assert result == expected


def test_steps_per_workload_report():
    print("\nBaseline  machine steps per workload (resolved / dict)")
    for name, (setup, expr, _expected) in WORKLOADS.items():
        counts = []
        for engine in ("resolved", "dict"):
            interp = Interpreter(engine=engine)
            if setup:
                interp.run(setup)
            before = interp.machine.steps_total
            interp.eval(expr)
            counts.append(interp.machine.steps_total - before)
        print(f"  {name:18s} {counts[0]:>9d} / {counts[1]:>9d} steps")
