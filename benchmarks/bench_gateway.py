#!/usr/bin/env python
"""Gateway serving benchmark: closed- and open-loop load over TCP.

    PYTHONPATH=src python benchmarks/bench_gateway.py           # full run
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_gateway.py --out x.json

Two phases against one in-process :class:`~repro.gateway.Gateway` over
a :class:`~repro.host.Host` backend (real sockets, loopback):

* **Closed loop** — N concurrent connections, each running submit →
  result back to back for a fixed duration.  Measures the sustainable
  request rate and the request latency distribution (p50/p99) with the
  offered load self-limited by completion.
* **Open loop** — requests fired at a fixed rate of 2× the measured
  sustainable throughput, regardless of completions (the arrival
  process does not slow down when the server does).  This is the
  overload test the shed contract exists for: the gateway must answer
  *every* frame — a result or a structured ``busy`` with
  ``retry_after_ms`` — with zero protocol errors and zero client
  timeouts, while inflight stays bounded by admission control instead
  of queue growth.

Plus two fault-injection phases:

* **Failover** — a 4-worker cluster-backed gateway under live load;
  halfway through, one shard worker is SIGKILLed.  Every accepted
  frame must still reach a terminal answer (snapshot replay recovers
  the killed shard's sessions), with zero hangs and at least one
  ``gateway.recovery.replays`` recorded; an explicit post-kill probe
  on a killed-shard session must answer with its pre-kill state.
* **Hedging** — a pooled client with one connection routed through a
  tarpit proxy (delayed server→client bytes).  Hedged evals must keep
  p99 at ≤ 1.2× the *unhedged* p99 under the same fault (in practice
  hedging restores near-clean latency; the gate is deliberately loose
  for shared runners).

Acceptance (gated in CI via ``--smoke``):

* zero protocol errors and zero client timeouts in every phase;
* every request answered: served + shed + failed == sent;
* under 2× overload the gateway actually sheds (shed rate in
  (0.02, 0.98) — load shedding, not collapse and not a free lunch);
* served-request p99 stays under a generous ceiling even at overload
  (bounded admission ⇒ bounded queueing delay);
* failover: zero unanswered frames, ≥1 snapshot-replay recovery, the
  probe answers; hedging: the p99 gate above plus ≥1 hedge launched.

Results merge into ``BENCH_results.json`` under ``"gateway"``
(fault-injection results under ``"gateway" -> "failover"`` /
``"hedging"``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import signal
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.cluster import Cluster  # noqa: E402
from repro.errors import GatewayBusy, GatewayRequestError  # noqa: E402
from repro.gateway import (  # noqa: E402
    Gateway,
    GatewayClient,
    GatewayClientPool,
    GatewayLimits,
)
from repro.host import Host  # noqa: E402

#: Served p99 ceiling under 2x overload, milliseconds.  Generous for
#: shared CI runners; the property being gated is boundedness (shed,
#: don't queue), not absolute speed.
P99_CEILING_MS = 2_000.0

#: The open-loop shed-rate window at 2x offered load: the gateway must
#: refuse some work (it cannot serve 2x its own ceiling) but must not
#: collapse into refusing everything.
SHED_RATE_MIN, SHED_RATE_MAX = 0.02, 0.98

SOURCE = "(+ %d 1)"

#: Ratio gate for the hedging phase: hedged p99 against unhedged p99
#: under the same one-slow-connection fault.
HEDGE_P99_RATIO = 1.2

#: Server→client byte delay of the tarpit proxy, seconds.
TARPIT_DELAY_S = 0.2


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _summary(latencies_s: list[float]) -> dict[str, float]:
    latencies = sorted(latencies_s)
    return {
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(latencies, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


class Tally:
    """Shared counters for one load phase."""

    def __init__(self) -> None:
        self.ok = 0
        self.shed = 0
        self.failed = 0  # eval-side failures (none expected here)
        self.timeouts = 0
        self.protocol_errors = 0
        self.latencies: list[float] = []

    @property
    def answered(self) -> int:
        return self.ok + self.shed + self.failed


async def _one_request(
    client: GatewayClient, session: str, tenant: str, i: int, tally: Tally
) -> float:
    """Run one submit→result round trip.  Returns the server's
    retry-after hint in seconds when the request was shed, else 0.0."""
    t0 = time.perf_counter()
    try:
        rid = await client.submit(session, SOURCE % i, tenant=tenant)
        value = await asyncio.wait_for(client.result(rid), timeout=30.0)
    except GatewayBusy as exc:
        tally.shed += 1
        if exc.retry_after_ms < 0:  # pragma: no cover - contract check
            tally.protocol_errors += 1
        return max(0.001, exc.retry_after_ms / 1000.0)
    except GatewayRequestError:
        tally.failed += 1
        return 0.0
    except asyncio.TimeoutError:
        tally.timeouts += 1
        return 0.0
    except Exception:  # noqa: BLE001 - anything else is a protocol error
        tally.protocol_errors += 1
        return 0.0
    if value != str(i + 1):
        tally.protocol_errors += 1
        return 0.0
    tally.ok += 1
    tally.latencies.append(time.perf_counter() - t0)
    return 0.0


async def _closed_loop(
    gw: Gateway, connections: int, sessions: int, duration: float
) -> dict[str, object]:
    clients = await asyncio.gather(
        *(GatewayClient.connect(gw.host, gw.port) for _ in range(connections))
    )
    tally = Tally()
    stop_at = time.perf_counter() + duration

    async def worker(k: int, client: GatewayClient) -> None:
        session, tenant = f"s{k % sessions}", f"t{k % sessions}"
        i = 0
        while time.perf_counter() < stop_at:
            # A well-behaved client: honour the retry hint on a shed
            # instead of hammering (the shed/retry contract's client
            # half, docs/SERVING.md).
            retry_after = await _one_request(client, session, tenant, i, tally)
            if retry_after:
                await asyncio.sleep(retry_after)
            i += 1

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(k, c) for k, c in enumerate(clients)))
    elapsed = time.perf_counter() - t0
    for client in clients:
        await client.close()
    throughput = tally.ok / elapsed if elapsed else 0.0
    return {
        "connections": connections,
        "duration_s": round(elapsed, 3),
        "requests_ok": tally.ok,
        "shed": tally.shed,
        "failed": tally.failed,
        "timeouts": tally.timeouts,
        "protocol_errors": tally.protocol_errors,
        "throughput_rps": round(throughput, 1),
        **_summary(tally.latencies),
    }


async def _open_loop(
    gw: Gateway,
    pool_size: int,
    sessions: int,
    rate: float,
    duration: float,
) -> dict[str, object]:
    clients = await asyncio.gather(
        *(GatewayClient.connect(gw.host, gw.port) for _ in range(pool_size))
    )
    tally = Tally()
    tasks: list[asyncio.Task] = []
    total = int(rate * duration)
    t0 = time.perf_counter()
    fired = 0
    # Fire in 10ms batches: the arrival clock never waits for results.
    while fired < total:
        now = time.perf_counter() - t0
        due = min(total, int(now * rate) + 1)
        while fired < due:
            client = clients[fired % pool_size]
            session, tenant = f"s{fired % sessions}", f"t{fired % sessions}"
            tasks.append(
                asyncio.ensure_future(
                    _one_request(client, session, tenant, fired, tally)
                )
            )
            fired += 1
        await asyncio.sleep(0.01)
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - t0
    for client in clients:
        await client.close()
    shed_rate = tally.shed / fired if fired else 0.0
    return {
        "offered_rps": round(rate, 1),
        "sent": fired,
        "duration_s": round(elapsed, 3),
        "requests_ok": tally.ok,
        "shed": tally.shed,
        "failed": tally.failed,
        "timeouts": tally.timeouts,
        "protocol_errors": tally.protocol_errors,
        "answered": tally.answered,
        "shed_rate": round(shed_rate, 4),
        "served_rps": round(tally.ok / elapsed, 1) if elapsed else 0.0,
        **_summary(tally.latencies),
    }


async def _failover_phase(duration: float) -> dict[str, object]:
    """Cluster-backed gateway under live load with a SIGKILLed shard
    at half time: the shard-failure-transparency contract, full scale."""
    sessions, workers, conns = 16, 4, 8
    cluster = Cluster(workers=workers, session_defaults={"prelude": False})
    try:
        limits = GatewayLimits(max_inflight=64, tenant_max_inflight=64)
        async with Gateway(cluster, limits=limits) as gw:
            clients = await asyncio.gather(
                *(GatewayClient.connect(gw.host, gw.port) for _ in range(conns))
            )
            try:
                # Warm every session: one completed request each, so the
                # snapshot store can replay any of them after the kill.
                for s in range(sessions):
                    value = await clients[s % conns].eval(
                        f"f{s}", f"(define base {s}) base", timeout=60.0
                    )
                    assert value == str(s)
                victim_shard = cluster.shard_for("f0")
                victim_session = "f0"
                victim_pid = cluster.shards[victim_shard].process.pid

                tally = Tally()
                sent = 0
                stop_at = time.perf_counter() + duration

                async def worker(k: int, client: GatewayClient) -> None:
                    nonlocal sent
                    i = 0
                    while time.perf_counter() < stop_at:
                        sid = f"f{(k + i) % sessions}"
                        sent += 1
                        t0 = time.perf_counter()
                        try:
                            rid = await client.submit(sid, SOURCE % i, tenant=f"t{k}")
                            value = await asyncio.wait_for(
                                client.result(rid), timeout=60.0
                            )
                        except GatewayBusy as exc:
                            tally.shed += 1
                            await asyncio.sleep(max(0.001, exc.retry_after_ms / 1000))
                            i += 1
                            continue
                        except GatewayRequestError:
                            tally.failed += 1
                            i += 1
                            continue
                        except asyncio.TimeoutError:
                            tally.timeouts += 1
                            i += 1
                            continue
                        except Exception:  # noqa: BLE001
                            tally.protocol_errors += 1
                            i += 1
                            continue
                        if value != str(i + 1):
                            tally.protocol_errors += 1
                        else:
                            tally.ok += 1
                            tally.latencies.append(time.perf_counter() - t0)
                        i += 1

                async def killer() -> None:
                    await asyncio.sleep(duration / 2)
                    os.kill(victim_pid, signal.SIGKILL)

                await asyncio.gather(
                    *(worker(k, c) for k, c in enumerate(clients)), killer()
                )

                # Post-kill probe: a session that lived on the killed
                # shard still answers from its pre-kill state.
                probe = await clients[0].eval(victim_session, "base", timeout=60.0)
                probe_ok = probe == "0"
                stats = await clients[0].stats()
            finally:
                for client in clients:
                    await client.close()
    finally:
        cluster.close()
    return {
        "workers": workers,
        "sessions": sessions,
        "duration_s": round(duration, 3),
        "sent": sent,
        "requests_ok": tally.ok,
        "shed": tally.shed,
        "failed": tally.failed,
        "timeouts": tally.timeouts,
        "protocol_errors": tally.protocol_errors,
        "answered": tally.answered,
        "recovery_replays": stats["gateway.recovery.replays"],
        "recovery_failures": stats["gateway.recovery.failures"],
        "cluster_respawns": stats["cluster.respawns"],
        "probe_recovered": probe_ok,
        **_summary(tally.latencies),
    }


class _Tarpit:
    """A loopback TCP proxy that delays server→client bytes: one slow
    connection, injected without touching the gateway."""

    def __init__(self, target_host: str, target_port: int, delay: float):
        self.target_host = target_host
        self.target_port = target_port
        self.delay = delay
        self.port = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "_Tarpit":
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            writer.close()
            return

        async def pump(
            r: asyncio.StreamReader, w: asyncio.StreamWriter, delay: float
        ) -> None:
            try:
                while True:
                    data = await r.read(65536)
                    if not data:
                        break
                    if delay:
                        await asyncio.sleep(delay)
                    w.write(data)
                    await w.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                try:
                    w.close()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

        try:
            await asyncio.gather(
                pump(reader, up_writer, 0.0), pump(up_reader, writer, self.delay)
            )
        except asyncio.CancelledError:  # proxy shutting down mid-transfer
            pass


async def _hedge_phase(requests: int) -> dict[str, object]:
    """Pooled client with one tarpitted connection: unhedged vs hedged
    closed-loop p99 under the same one-slow-connection fault."""
    conns, concurrency = 4, 8
    host = Host(max_pending=256, quantum=2048)
    async with Gateway(host) as gw:
        tarpit = await _Tarpit(gw.host, gw.port, TARPIT_DELAY_S).start()
        pool = await GatewayClientPool.connect(gw.host, gw.port, size=conns)
        try:
            # Warm the latency samples on all-healthy connections at
            # the same concurrency the measurement will run (sequential
            # warm-up would understate p99 and over-fire the hedge),
            # then freeze the hedge delay at the observed clean p99.
            async def warm(k: int) -> None:
                for i in range(12):
                    await pool.eval(f"h{k}", SOURCE % i, timeout=30.0)

            await asyncio.gather(*(warm(k) for k in range(concurrency)))
            clean_p99 = pool.hedge_delay()
            pool._hedge_delay_cfg = max(0.005, clean_p99)

            # Inject the fault: slot 0 now talks through the tarpit.
            slow = await GatewayClient.connect("127.0.0.1", tarpit.port)
            healthy = pool._clients[0]
            pool._clients[0] = slow
            if healthy is not None:
                await healthy.close()

            async def measure(hedge: bool) -> list[float]:
                latencies: list[float] = []
                counter = iter(range(10**9))

                async def worker(k: int) -> None:
                    for _ in range(requests // concurrency):
                        i = next(counter)
                        t0 = time.perf_counter()
                        value = await pool.eval(
                            f"h{k}", SOURCE % i, timeout=60.0, hedge=hedge
                        )
                        assert value == str(i + 1)
                        latencies.append(time.perf_counter() - t0)

                await asyncio.gather(*(worker(k) for k in range(concurrency)))
                return latencies

            unhedged = await measure(hedge=False)
            hedged = await measure(hedge=True)
            counters = dict(pool.counters)
        finally:
            await pool.close()
            await tarpit.close()
    unhedged_stats = _summary(unhedged)
    hedged_stats = _summary(hedged)
    return {
        "pool_size": conns,
        "requests_per_mode": requests,
        "tarpit_delay_ms": TARPIT_DELAY_S * 1000,
        "clean_p99_ms": round(clean_p99 * 1e3, 3),
        "hedge_delay_ms": round(float(pool._hedge_delay_cfg) * 1e3, 3),
        "unhedged": unhedged_stats,
        "hedged": hedged_stats,
        "p99_ratio": round(
            hedged_stats["p99_ms"] / max(1e-9, unhedged_stats["p99_ms"]), 4
        ),
        **counters,
    }


async def _run(args: argparse.Namespace) -> dict[str, object]:
    connections = 64 if args.smoke else args.connections
    sessions = min(connections, 64)
    duration = 2.0 if args.smoke else args.duration
    limits = GatewayLimits(max_inflight=64, tenant_max_inflight=32)
    host = Host(max_pending=256, quantum=2048)
    async with Gateway(host, limits=limits) as gw:
        print(
            f"\n=== closed loop ({connections} connections, "
            f"{sessions} sessions, {duration:.0f}s) ==="
        )
        closed = await _closed_loop(gw, connections, sessions, duration)
        print(
            f"  {closed['throughput_rps']:8.0f} req/s  "
            f"p50={closed['p50_ms']:.2f}ms p99={closed['p99_ms']:.2f}ms  "
            f"shed={closed['shed']} errors={closed['protocol_errors']}"
        )

        sustainable = float(closed["throughput_rps"])  # type: ignore[arg-type]
        offered = max(50.0, 2.0 * sustainable)
        print(
            f"\n=== open loop (2x overload: {offered:.0f} req/s offered, "
            f"{duration:.0f}s) ==="
        )
        open_ = await _open_loop(
            gw, min(connections, 64), sessions, offered, duration
        )
        print(
            f"  sent={open_['sent']} ok={open_['requests_ok']} "
            f"shed={open_['shed']} ({100 * float(open_['shed_rate']):.1f}%) "  # type: ignore[arg-type]
            f"timeouts={open_['timeouts']} errors={open_['protocol_errors']}"
        )
        print(
            f"  served p50={open_['p50_ms']:.2f}ms p99={open_['p99_ms']:.2f}ms "
            f"at {open_['served_rps']:.0f} req/s"
        )
        gateway_stats = gw.stats
        histograms = gw.histograms()

    if "fork" in multiprocessing.get_all_start_methods():
        fail_duration = 3.0 if args.smoke else min(duration, 6.0)
        print(f"\n=== failover (4-worker cluster, SIGKILL at t/2, {fail_duration:.0f}s) ===")
        failover = await _failover_phase(fail_duration)
        print(
            f"  sent={failover['sent']} ok={failover['requests_ok']} "
            f"timeouts={failover['timeouts']} "
            f"replays={failover['recovery_replays']} "
            f"probe={'ok' if failover['probe_recovered'] else 'LOST'}"
        )
    else:  # pragma: no cover - non-fork platforms
        failover = {"skipped": "fork start method unavailable"}

    hedge_requests = 96 if args.smoke else 160
    print(f"\n=== hedging (tarpitted connection, {hedge_requests} req/mode) ===")
    hedging = await _hedge_phase(hedge_requests)
    print(
        f"  unhedged p99={hedging['unhedged']['p99_ms']:.1f}ms  "  # type: ignore[index]
        f"hedged p99={hedging['hedged']['p99_ms']:.1f}ms  "  # type: ignore[index]
        f"ratio={hedging['p99_ratio']}  "
        f"launched={hedging['client.hedge.launched']} "
        f"wins={hedging['client.hedge.wins']}"
    )

    return {
        "closed_loop": closed,
        "open_loop": open_,
        "failover": failover,
        "hedging": hedging,
        "gateway_stats": gateway_stats,
        "histograms": histograms,
    }


def _merge_out(path: str, payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["gateway"] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the gateway section merges into an "
        "existing file (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--connections", type=int, default=1000, help="closed-loop connections"
    )
    parser.add_argument(
        "--duration", type=float, default=8.0, help="seconds per phase"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: 64 connections, 2s phases, same gates",
    )
    args = parser.parse_args(argv)

    payload = asyncio.run(_run(args))
    closed = payload["closed_loop"]
    open_ = payload["open_loop"]
    failover = payload["failover"]
    hedging = payload["hedging"]

    checks = {
        "zero_protocol_errors": (
            closed["protocol_errors"] == 0 and open_["protocol_errors"] == 0  # type: ignore[index]
        ),
        "zero_timeouts": closed["timeouts"] == 0 and open_["timeouts"] == 0,  # type: ignore[index]
        "every_frame_answered": open_["answered"] == open_["sent"],  # type: ignore[index]
        "sheds_under_overload": (
            SHED_RATE_MIN < float(open_["shed_rate"]) < SHED_RATE_MAX  # type: ignore[index, arg-type]
        ),
        "p99_bounded": float(open_["p99_ms"]) < P99_CEILING_MS,  # type: ignore[index, arg-type]
    }
    if "skipped" not in failover:  # type: ignore[operator]
        checks.update(
            {
                "failover_every_frame_answered": (
                    failover["answered"] == failover["sent"]  # type: ignore[index]
                    and failover["timeouts"] == 0  # type: ignore[index]
                    and failover["protocol_errors"] == 0  # type: ignore[index]
                ),
                "failover_recovery_replayed": int(failover["recovery_replays"]) >= 1,  # type: ignore[index, arg-type]
                "failover_probe_recovered": bool(failover["probe_recovered"]),  # type: ignore[index]
            }
        )
    checks.update(
        {
            "hedged_p99_bounded": (
                float(hedging["p99_ratio"]) <= HEDGE_P99_RATIO  # type: ignore[index, arg-type]
            ),
            "hedge_fired": int(hedging["client.hedge.launched"]) >= 1,  # type: ignore[index, arg-type]
        }
    )
    acceptance_pass = all(checks.values())
    payload["acceptance"] = {
        **checks,
        "shed_rate_window": [SHED_RATE_MIN, SHED_RATE_MAX],
        "p99_ceiling_ms": P99_CEILING_MS,
        "hedge_p99_ratio_gate": HEDGE_P99_RATIO,
        "smoke": args.smoke,
        "pass": acceptance_pass,
    }
    _merge_out(args.out, payload)
    print(f"\nwrote gateway section to {args.out}")
    failing = [name for name, ok in checks.items() if not ok]
    status = "pass" if acceptance_pass else f"FAIL ({', '.join(failing)})"
    print(f"acceptance [{status}]")
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
