#!/usr/bin/env python
"""Gateway serving benchmark: closed- and open-loop load over TCP.

    PYTHONPATH=src python benchmarks/bench_gateway.py           # full run
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_gateway.py --out x.json

Two phases against one in-process :class:`~repro.gateway.Gateway` over
a :class:`~repro.host.Host` backend (real sockets, loopback):

* **Closed loop** — N concurrent connections, each running submit →
  result back to back for a fixed duration.  Measures the sustainable
  request rate and the request latency distribution (p50/p99) with the
  offered load self-limited by completion.
* **Open loop** — requests fired at a fixed rate of 2× the measured
  sustainable throughput, regardless of completions (the arrival
  process does not slow down when the server does).  This is the
  overload test the shed contract exists for: the gateway must answer
  *every* frame — a result or a structured ``busy`` with
  ``retry_after_ms`` — with zero protocol errors and zero client
  timeouts, while inflight stays bounded by admission control instead
  of queue growth.

Acceptance (gated in CI via ``--smoke``):

* zero protocol errors and zero client timeouts in both phases;
* every open-loop request answered: served + shed + failed == sent;
* under 2× overload the gateway actually sheds (shed rate in
  (0.02, 0.98) — load shedding, not collapse and not a free lunch);
* served-request p99 stays under a generous ceiling even at overload
  (bounded admission ⇒ bounded queueing delay).

Results merge into ``BENCH_results.json`` under ``"gateway"``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.errors import GatewayBusy, GatewayRequestError  # noqa: E402
from repro.gateway import Gateway, GatewayClient, GatewayLimits  # noqa: E402
from repro.host import Host  # noqa: E402

#: Served p99 ceiling under 2x overload, milliseconds.  Generous for
#: shared CI runners; the property being gated is boundedness (shed,
#: don't queue), not absolute speed.
P99_CEILING_MS = 2_000.0

#: The open-loop shed-rate window at 2x offered load: the gateway must
#: refuse some work (it cannot serve 2x its own ceiling) but must not
#: collapse into refusing everything.
SHED_RATE_MIN, SHED_RATE_MAX = 0.02, 0.98

SOURCE = "(+ %d 1)"


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _summary(latencies_s: list[float]) -> dict[str, float]:
    latencies = sorted(latencies_s)
    return {
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(latencies, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


class Tally:
    """Shared counters for one load phase."""

    def __init__(self) -> None:
        self.ok = 0
        self.shed = 0
        self.failed = 0  # eval-side failures (none expected here)
        self.timeouts = 0
        self.protocol_errors = 0
        self.latencies: list[float] = []

    @property
    def answered(self) -> int:
        return self.ok + self.shed + self.failed


async def _one_request(
    client: GatewayClient, session: str, tenant: str, i: int, tally: Tally
) -> float:
    """Run one submit→result round trip.  Returns the server's
    retry-after hint in seconds when the request was shed, else 0.0."""
    t0 = time.perf_counter()
    try:
        rid = await client.submit(session, SOURCE % i, tenant=tenant)
        value = await asyncio.wait_for(client.result(rid), timeout=30.0)
    except GatewayBusy as exc:
        tally.shed += 1
        if exc.retry_after_ms < 0:  # pragma: no cover - contract check
            tally.protocol_errors += 1
        return max(0.001, exc.retry_after_ms / 1000.0)
    except GatewayRequestError:
        tally.failed += 1
        return 0.0
    except asyncio.TimeoutError:
        tally.timeouts += 1
        return 0.0
    except Exception:  # noqa: BLE001 - anything else is a protocol error
        tally.protocol_errors += 1
        return 0.0
    if value != str(i + 1):
        tally.protocol_errors += 1
        return 0.0
    tally.ok += 1
    tally.latencies.append(time.perf_counter() - t0)
    return 0.0


async def _closed_loop(
    gw: Gateway, connections: int, sessions: int, duration: float
) -> dict[str, object]:
    clients = await asyncio.gather(
        *(GatewayClient.connect(gw.host, gw.port) for _ in range(connections))
    )
    tally = Tally()
    stop_at = time.perf_counter() + duration

    async def worker(k: int, client: GatewayClient) -> None:
        session, tenant = f"s{k % sessions}", f"t{k % sessions}"
        i = 0
        while time.perf_counter() < stop_at:
            # A well-behaved client: honour the retry hint on a shed
            # instead of hammering (the shed/retry contract's client
            # half, docs/SERVING.md).
            retry_after = await _one_request(client, session, tenant, i, tally)
            if retry_after:
                await asyncio.sleep(retry_after)
            i += 1

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(k, c) for k, c in enumerate(clients)))
    elapsed = time.perf_counter() - t0
    for client in clients:
        await client.close()
    throughput = tally.ok / elapsed if elapsed else 0.0
    return {
        "connections": connections,
        "duration_s": round(elapsed, 3),
        "requests_ok": tally.ok,
        "shed": tally.shed,
        "failed": tally.failed,
        "timeouts": tally.timeouts,
        "protocol_errors": tally.protocol_errors,
        "throughput_rps": round(throughput, 1),
        **_summary(tally.latencies),
    }


async def _open_loop(
    gw: Gateway,
    pool_size: int,
    sessions: int,
    rate: float,
    duration: float,
) -> dict[str, object]:
    clients = await asyncio.gather(
        *(GatewayClient.connect(gw.host, gw.port) for _ in range(pool_size))
    )
    tally = Tally()
    tasks: list[asyncio.Task] = []
    total = int(rate * duration)
    t0 = time.perf_counter()
    fired = 0
    # Fire in 10ms batches: the arrival clock never waits for results.
    while fired < total:
        now = time.perf_counter() - t0
        due = min(total, int(now * rate) + 1)
        while fired < due:
            client = clients[fired % pool_size]
            session, tenant = f"s{fired % sessions}", f"t{fired % sessions}"
            tasks.append(
                asyncio.ensure_future(
                    _one_request(client, session, tenant, fired, tally)
                )
            )
            fired += 1
        await asyncio.sleep(0.01)
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - t0
    for client in clients:
        await client.close()
    shed_rate = tally.shed / fired if fired else 0.0
    return {
        "offered_rps": round(rate, 1),
        "sent": fired,
        "duration_s": round(elapsed, 3),
        "requests_ok": tally.ok,
        "shed": tally.shed,
        "failed": tally.failed,
        "timeouts": tally.timeouts,
        "protocol_errors": tally.protocol_errors,
        "answered": tally.answered,
        "shed_rate": round(shed_rate, 4),
        "served_rps": round(tally.ok / elapsed, 1) if elapsed else 0.0,
        **_summary(tally.latencies),
    }


async def _run(args: argparse.Namespace) -> dict[str, object]:
    connections = 64 if args.smoke else args.connections
    sessions = min(connections, 64)
    duration = 2.0 if args.smoke else args.duration
    limits = GatewayLimits(max_inflight=64, tenant_max_inflight=32)
    host = Host(max_pending=256, quantum=2048)
    async with Gateway(host, limits=limits) as gw:
        print(
            f"\n=== closed loop ({connections} connections, "
            f"{sessions} sessions, {duration:.0f}s) ==="
        )
        closed = await _closed_loop(gw, connections, sessions, duration)
        print(
            f"  {closed['throughput_rps']:8.0f} req/s  "
            f"p50={closed['p50_ms']:.2f}ms p99={closed['p99_ms']:.2f}ms  "
            f"shed={closed['shed']} errors={closed['protocol_errors']}"
        )

        sustainable = float(closed["throughput_rps"])  # type: ignore[arg-type]
        offered = max(50.0, 2.0 * sustainable)
        print(
            f"\n=== open loop (2x overload: {offered:.0f} req/s offered, "
            f"{duration:.0f}s) ==="
        )
        open_ = await _open_loop(
            gw, min(connections, 64), sessions, offered, duration
        )
        print(
            f"  sent={open_['sent']} ok={open_['requests_ok']} "
            f"shed={open_['shed']} ({100 * float(open_['shed_rate']):.1f}%) "  # type: ignore[arg-type]
            f"timeouts={open_['timeouts']} errors={open_['protocol_errors']}"
        )
        print(
            f"  served p50={open_['p50_ms']:.2f}ms p99={open_['p99_ms']:.2f}ms "
            f"at {open_['served_rps']:.0f} req/s"
        )
        gateway_stats = gw.stats
        histograms = gw.histograms()
    return {
        "closed_loop": closed,
        "open_loop": open_,
        "gateway_stats": gateway_stats,
        "histograms": histograms,
    }


def _merge_out(path: str, payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["gateway"] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the gateway section merges into an "
        "existing file (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--connections", type=int, default=1000, help="closed-loop connections"
    )
    parser.add_argument(
        "--duration", type=float, default=8.0, help="seconds per phase"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: 64 connections, 2s phases, same gates",
    )
    args = parser.parse_args(argv)

    payload = asyncio.run(_run(args))
    closed = payload["closed_loop"]
    open_ = payload["open_loop"]

    checks = {
        "zero_protocol_errors": (
            closed["protocol_errors"] == 0 and open_["protocol_errors"] == 0  # type: ignore[index]
        ),
        "zero_timeouts": closed["timeouts"] == 0 and open_["timeouts"] == 0,  # type: ignore[index]
        "every_frame_answered": open_["answered"] == open_["sent"],  # type: ignore[index]
        "sheds_under_overload": (
            SHED_RATE_MIN < float(open_["shed_rate"]) < SHED_RATE_MAX  # type: ignore[index, arg-type]
        ),
        "p99_bounded": float(open_["p99_ms"]) < P99_CEILING_MS,  # type: ignore[index, arg-type]
    }
    acceptance_pass = all(checks.values())
    payload["acceptance"] = {
        **checks,
        "shed_rate_window": [SHED_RATE_MIN, SHED_RATE_MAX],
        "p99_ceiling_ms": P99_CEILING_MS,
        "smoke": args.smoke,
        "pass": acceptance_pass,
    }
    _merge_out(args.out, payload)
    print(f"\nwrote gateway section to {args.out}")
    failing = [name for name, ok in checks.items() if not ok]
    status = "pass" if acceptance_pass else f"FAIL ({', '.join(failing)})"
    print(f"acceptance [{status}]")
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
