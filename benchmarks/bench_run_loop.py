"""Supplementary — the quantum-batched register run loop (PR 3 A/B).

Rows compare the batched drivers (:func:`repro.machine.step.run_quantum`
/ ``run_quantum_compiled``), which hold the control registers in Python
locals for a whole quantum, against the unbatched per-step ablation
driver (``batched=False``, the PR-2 cost model) on three shapes chosen
to stress different parts of the loop:

* ``arith-loop`` — a tight tail loop of trivial applications: the
  best case for register batching (almost every transition stays in
  locals, one write-back per quantum);
* ``mutual-deep`` — deep mutual recursion: frame pushes and link
  deliveries dominate, exercising the fused one-frame delivery path;
* ``pcall-fan-out`` — a 64-branch ``pcall``: every fork and join is a
  spill point, so batching buys the least; this row bounds the spill
  protocol's overhead rather than its savings.

The quantum sweep on ``arith-loop`` shows where the amortisation
flattens out: quantum=1 pays a spill per step (the batched loop
degenerates to the stepped one), and by a few hundred steps per
quantum the write-back cost has vanished into the noise.
"""

from __future__ import annotations

import pytest

from repro import Interpreter

ARITH_LOOP = (
    "(define (spin n acc) (if (= n 0) acc (spin (- n 1) (+ acc 1))))",
    "(spin 4000 0)",
)

MUTUAL_DEEP = (
    "(begin"
    " (define (even? n) (if (= n 0) #t (odd? (- n 1))))"
    " (define (odd? n) (if (= n 0) #f (even? (- n 1)))))",
    "(even? 6000)",
)

PCALL_FAN_OUT = (
    "(define (work n) (if (= n 0) 1 (work (- n 1))))",
    "(pcall + " + " ".join("(work 32)" for _ in range(64)) + ")",
)

SHAPES = {
    "arith-loop": ARITH_LOOP,
    "mutual-deep": MUTUAL_DEEP,
    "pcall-fan-out": PCALL_FAN_OUT,
}


def fresh(*, batched: bool, engine: str = "compiled", quantum: int = 4096) -> Interpreter:
    return Interpreter(
        policy="round-robin", engine=engine, batched=batched, quantum=quantum
    )


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("batched", [True, False], ids=["batched", "stepped"])
def test_run_loop_timing(benchmark, shape, batched):
    setup, expr = SHAPES[shape]
    interp = fresh(batched=batched)
    interp.run(setup)
    benchmark(lambda: interp.eval(expr))


@pytest.mark.parametrize("quantum", [1, 16, 256, 4096])
def test_quantum_sweep_timing(benchmark, quantum):
    setup, expr = ARITH_LOOP
    interp = fresh(batched=True, quantum=quantum)
    interp.run(setup)
    benchmark(lambda: interp.eval(expr))


@pytest.mark.parametrize("engine", ["dict", "resolved", "compiled"])
def test_tree_engines_share_batched_loop(benchmark, engine):
    # dict and resolved share run_quantum; compiled has its own loop.
    setup, expr = ARITH_LOOP
    interp = fresh(batched=True, engine=engine)
    interp.run(setup)
    benchmark(lambda: interp.eval(expr))


def test_batched_equals_stepped_on_every_shape():
    print("\nRun loop  batched vs stepped (values and step counts)")
    for shape, (setup, expr) in sorted(SHAPES.items()):
        results = {}
        for batched in (True, False):
            interp = fresh(batched=batched)
            interp.run(setup)
            value = interp.eval_to_string(expr)
            results[batched] = (value, interp.machine.steps_total)
        print(f"  {shape:14s}: value={results[True][0]!r:8s} steps={results[True][1]}")
        assert results[True] == results[False]


def test_write_backs_avoided_scale_with_quantum():
    print("\nRun loop  spill profile vs quantum (arith-loop)")
    setup, expr = ARITH_LOOP
    rows = []
    for quantum in (1, 16, 256, 4096):
        interp = Interpreter(
            policy="round-robin", engine="compiled", quantum=quantum, profile=True
        )
        interp.run(setup)
        interp.eval(expr)
        stats = interp.stats
        avoided = stats["vm.allocations_avoided"]
        steps = stats["vm.quantum_steps"]
        rows.append((quantum, avoided, steps))
        print(
            f"  quantum={quantum:5d}: steps={steps:6d} quanta={stats['vm.quanta']:6d}"
            f" write-backs avoided={avoided}"
        )
    # quantum=1 spills every step; larger quanta avoid nearly all of them.
    assert rows[0][1] == 0
    assert rows[-1][1] > rows[-1][2] * 0.95
