"""E8 — Section 6: the rewriting semantics validates the machine.

Reproduced here:

* a differential sweep over the paper's control programs (values agree
  — the semantics' rewrite-rule firing counts are printed as the
  'table' of this experiment);
* relative cost of the two executable semantics (the substitution-based
  rewriter is the specification; the machine is the implementation —
  the gap is the point of Section 7).
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from repro.semantics import compile_source, rewrite_run, run_both, values_agree

PROGRAMS = {
    "beta-chain": "((lambda (f) (f (f (f 1)))) (lambda (n) (+ n 1)))",
    "spawn-return": "(spawn (lambda (c) (* 6 7)))",
    "controller-abort": "(spawn (lambda (c) (+ 1 (c (lambda (k) 5)))))",
    "reinstate-once": "(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))",
    "reinstate-twice": "(spawn (lambda (c) (+ 1 (c (lambda (k) (k (k 10)))))))",
    "nested-spawn": "(spawn (lambda (a) (+ 1 (spawn (lambda (b) (a (lambda (k) 5)))))))",
    "paper-triple": (
        "((spawn (lambda (c) (c (c (lambda (k) "
        "(k (lambda (k) (k (lambda (k) k))))))))) 9)"
    ),
}


def test_e8_rule_count_table():
    print("\nE8  rewrite-rule firing counts per paper program")
    print(f"  {'program':18s} {'steps':>5s}  beta spawn control label δ if")
    for name, source in PROGRAMS.items():
        result = rewrite_run(compile_source(source))
        counts = result.rule_counts
        print(
            f"  {name:18s} {result.steps:5d}  "
            f"{counts.get('beta', 0):4d} {counts.get('spawn', 0):5d} "
            f"{counts.get('control', 0):7d} {counts.get('label-return', 0):5d} "
            f"{counts.get('delta', 0):1d} {counts.get('if', 0):2d}"
        )
        _, machine_value = run_both(source)
        assert values_agree(result.value, machine_value), name


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_e8_rewriter_timing(benchmark, name):
    source = PROGRAMS[name]
    term = compile_source(source)

    result = benchmark(lambda: rewrite_run(term))
    assert result.value is not None


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_e8_machine_timing(benchmark, name):
    source = PROGRAMS[name]

    def go():
        return Interpreter(prelude=False, policy="serial").eval(source)

    assert go() is not None
    benchmark(go)


def test_e8_rewriter_cost_grows_with_term_size_machine_does_not():
    """The rewriter substitutes textually, so β on a big argument costs
    O(term); the machine binds in an environment at O(1).  This is the
    classic spec-vs-implementation gap."""
    import time

    from repro.semantics.rewrite import step as rewrite_step
    from repro.semantics.terms import App, Lam, Var

    def nested_value(depth: int):
        # A value of growing syntactic size: nested lambdas, built
        # directly as terms to sidestep parser nesting limits.
        out = Lam("z", Var("z"))
        for _ in range(depth):
            out = Lam("z", out)
        return out

    def spec_time(depth: int) -> float:
        term = App(Lam("x", App(Var("x"), Var("x"))), nested_value(depth))
        rewrite_step(term)  # warm up
        start = time.perf_counter()
        for _ in range(40):
            rewrite_step(term)
        return time.perf_counter() - start

    small, large = spec_time(5), spec_time(2000)
    print(f"\nE8  one β step on small vs large term: {small:.5f}s vs {large:.5f}s")
    assert large > small  # substitution cost scales with the term
