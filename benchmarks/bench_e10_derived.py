"""E10 — Section 8 / references [6] and [11]: engines, coroutines and
futures derive from process continuations.

Claims reproduced:

* engine preemption overhead is proportional to the number of
  suspensions, not to total work (smaller fuel ⇒ more suspensions ⇒
  more overhead, same answers);
* coroutine transfer cost is flat in the coroutine's past (suspension
  n costs the same as suspension 1);
* futures overlap with their parent (forest of trees): interleaved
  step counts, and a controller can never cross trees.
"""

from __future__ import annotations

import time

import pytest

from repro.runtime import Call, Coroutine, MakeFuture, Runtime, Touch
from repro.runtime.engines import make_engine, round_robin


def worker(n):
    def body():
        total = 0
        for i in range(n):
            total += i
            yield Call(lambda: None)
        return total

    return body


def test_e10_engine_overhead_scales_with_suspensions():
    print("\nE10  engine: total steps vs fuel quantum (work = 2000 ticks)")
    rows = []
    for fuel in (10, 100, 1000):
        engine = make_engine(worker(2000))
        outcome = engine.run(fuel)
        suspensions = 1
        while not outcome.done:
            outcome = outcome.engine.run(fuel)
            suspensions += 1
        rows.append((fuel, suspensions, engine.mileage))
        print(
            f"  fuel={fuel:5d}: suspensions={suspensions:4d} "
            f"total-steps={engine.mileage}"
        )
        assert outcome.value == sum(range(2000))
    # Same total machine work regardless of slicing (within one slice).
    assert abs(rows[0][2] - rows[2][2]) <= max(r[0] for r in rows)
    # Suspension count inversely proportional to fuel.
    assert rows[0][1] > rows[2][1] * 50


def test_e10_round_robin_is_fair():
    """Three unequal workers sliced fairly: all finish, and the total
    mileage equals the sum of individual runs (no re-execution —
    contrast with the call/cc snapshot semantics of E2)."""
    sizes = (300, 600, 900)
    engines = [make_engine(worker(n)) for n in sizes]
    values = round_robin(engines, fuel_each=50)
    assert values == [sum(range(n)) for n in sizes]


def test_e10_coroutine_transfer_cost_flat():
    def producer(suspend):
        i = 0
        while True:
            got = yield suspend(i)
            if got == "stop":
                return i
            i += 1

    co = Coroutine(producer)
    co.resume()

    def cost_of_next(batch: int) -> float:
        start = time.perf_counter()
        for _ in range(batch):
            co.resume(None)
        return (time.perf_counter() - start) / batch

    early = cost_of_next(50)
    for _ in range(400):
        co.resume(None)
    late = cost_of_next(50)
    print(f"\nE10  coroutine transfer: early={early * 1e6:.1f}μs late={late * 1e6:.1f}μs")
    # Flat: transfer cost after 450 suspensions ≈ cost after 1.
    assert late < early * 3 + 1e-4
    assert co.resume("stop").done


@pytest.mark.parametrize("ncoroutines", [1, 8])
def test_e10_coroutine_timing(benchmark, ncoroutines):
    def counter(suspend):
        for i in range(20):
            yield suspend(i)
        return "done"

    def drive():
        coroutines = [Coroutine(counter) for _ in range(ncoroutines)]
        results = []
        for co in coroutines:
            result = co.resume()
            while not result.done:
                result = co.resume()
            results.append(result.value)
        return results

    assert benchmark(drive) == ["done"] * ncoroutines


def test_e10_futures_overlap_with_parent():
    trace = []

    def main():
        def background():
            for _ in range(30):
                trace.append("future")
                yield Call(lambda: None)
            return "bg"

        ph = yield MakeFuture(background)
        for _ in range(30):
            trace.append("main")
            yield Call(lambda: None)
        value = yield Touch(ph)
        return value

    assert Runtime(quantum=1).run(main) == "bg"
    first_20 = trace[:20]
    print(
        f"\nE10  future/parent interleaving (first 20 events): "
        f"{first_20.count('main')} main / {first_20.count('future')} future"
    )
    assert 5 <= first_20.count("main") <= 15  # genuinely overlapped


@pytest.mark.parametrize("nfutures", [1, 4, 16])
def test_e10_future_fanout_timing(benchmark, nfutures):
    def main():
        def job(n):
            def body():
                total = 0
                for i in range(50):
                    total += i * n
                    yield Call(lambda: None)
                return total

            return body

        placeholders = []
        for n in range(nfutures):
            ph = yield MakeFuture(job(n))
            placeholders.append(ph)
        total = 0
        for ph in placeholders:
            value = yield Touch(ph)
            total += value
        return total

    expected = sum(sum(i * n for i in range(50)) for n in range(nfutures))
    assert benchmark(lambda: Runtime().run(main)) == expected


def test_e10_machine_engines_slicing_invariance():
    """Machine-level engines (Scheme): answers are independent of
    slicing granularity, and total mileage ≈ unsliced step count."""
    from repro import Interpreter

    print("\nE10  machine engines: slices and mileage vs fuel")
    mileages = []
    for fuel in (25, 250, 25_000):
        interp = Interpreter()
        interp.run(
            """
            (define (drive eng fuel)
              (engine-run eng fuel
                (lambda (v r) v)
                (lambda (e) (drive e fuel))))
            (define e (make-engine (lambda ()
              (let loop ([i 200] [acc 0])
                (if (zero? i) acc (loop (- i 1) (+ acc i)))))))
            """
        )
        value = interp.eval(f"(drive e {fuel})")
        mileage = interp.eval("(engine-mileage e)")
        mileages.append(mileage)
        print(f"  fuel={fuel:6d}: value={value} mileage={mileage}")
        assert value == sum(range(201))
    # Same work regardless of slicing, to within one slice.
    assert max(mileages) - min(mileages) <= 25


@pytest.mark.parametrize("fuel", [50, 5000])
def test_e10_machine_engine_timing(benchmark, fuel):
    from repro import Interpreter

    interp = Interpreter()
    interp.run(
        """
        (define (drive eng fuel)
          (engine-run eng fuel
            (lambda (v r) v)
            (lambda (e) (drive e fuel))))
        """
    )

    def go():
        interp.run(
            "(define e (make-engine (lambda () "
            "(let loop ([i 100] [acc 0]) (if (zero? i) acc (loop (- i 1) (+ acc i)))))))"
        )
        return interp.eval(f"(drive e {fuel})")

    assert benchmark(go) == sum(range(101))
