"""E4 — Section 5's sum-of-products: branch-local exits with spawn/exit
under pcall.

Claims reproduced:

* a zero in one list aborts *only* that branch: the sibling branch's
  work is untouched (verified via step counts);
* the abort itself is O(control points), so total cost with a front
  zero ≈ cost of the sibling alone.
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from benchmarks.conftest import scheme_list

LENGTH = 300


def fresh() -> Interpreter:
    interp = Interpreter()
    interp.load_paper_example("sum-of-products")
    return interp


def steps(ls1: list[int], ls2: list[int]) -> int:
    interp = fresh()
    before = interp.machine.steps_total
    interp.eval(f"(sum-of-products '{scheme_list(ls1)} '{scheme_list(ls2)})")
    return interp.machine.steps_total - before


def test_e4_shape_zero_aborts_one_branch_only():
    ones = [1] * LENGTH
    zero_front = [0] + [1] * (LENGTH - 1)
    both_clean = steps(ones, ones)
    one_zero = steps(zero_front, ones)
    both_zero = steps(zero_front, zero_front)
    print("\nE4  sum-of-products (machine steps, length", LENGTH, ")")
    print(f"  no zeros:          {both_clean}")
    print(f"  zero in list 1:    {one_zero}")
    print(f"  zeros in both:     {both_zero}")
    # One early exit saves roughly half the work; two save ~everything.
    assert one_zero < 0.75 * both_clean
    assert both_zero < 0.25 * both_clean


@pytest.mark.parametrize(
    "case", ["clean-clean", "zero-clean", "zero-zero"], ids=str
)
def test_e4_sum_of_products_timing(benchmark, case):
    interp = fresh()
    ones = [1] * LENGTH
    zero_front = [0] + [1] * (LENGTH - 1)
    ls1 = zero_front if case.startswith("zero") else ones
    ls2 = zero_front if case.endswith("zero") else ones
    source = f"(sum-of-products '{scheme_list(ls1)} '{scheme_list(ls2)})"
    expected = (0 if ls1[0] == 0 else 1) + (0 if ls2[0] == 0 else 1)

    result = benchmark(lambda: interp.eval(source))
    assert result == expected


def test_e4_exit_does_not_disturb_sibling():
    """The abort in branch 1 must not change branch 2's step count:
    compare branch-2-alone against branch-2-next-to-aborting-branch-1,
    using the per-task step counters."""
    interp = fresh()
    zero = [0] * 3
    ones = [1] * LENGTH
    interp.eval(f"(sum-of-products '{scheme_list(zero)} '{scheme_list(ones)})")
    with_abort = interp.machine.steps_total
    interp2 = fresh()
    interp2.eval(f"(sum-of-products '{scheme_list([1]*3)} '{scheme_list(ones)})")
    without_abort = interp2.machine.steps_total
    # The aborting variant does strictly less total work.
    assert with_abort < without_abort
