"""The pooled gateway client: round-robin, reconnect, hedged evals."""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from repro.errors import GatewayBusy, GatewayRequestError
from repro.gateway import Gateway, GatewayClientPool, GatewayLimits
from repro.host import Host

from .conftest import run, serving


@pytest.fixture
def pool_kwargs():
    return {"rng": random.Random(7), "reconnect_base": 0.01}


# -- basics ----------------------------------------------------------------


def test_pool_round_trips_across_connections(pool_kwargs):
    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=3, **pool_kwargs
            )
            try:
                for i in range(6):
                    assert await pool.eval("s", f"(+ {i} 1)") == str(i + 1)
                stats = pool.pool_stats()
                assert stats["client.pool.live"] == 3
                assert stats["client.hedge.launched"] == 0
                # Round-robin: the gateway saw all three connections.
                assert gw.stats["gateway.submits"] == 6
            finally:
                await pool.close()

    run(main())


def test_pool_submit_poll_result_cancel_route_by_request(pool_kwargs):
    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, **pool_kwargs
            )
            try:
                rid = await pool.submit("s", "(* 6 7)")
                assert await pool.result(rid, timeout=30) == "42"
                rid2 = await pool.submit("s", "(+ 1 2)")
                poll = await pool.poll(rid2)
                assert "state" in poll
                await pool.result(rid2, timeout=30)
                assert await pool.cancel(rid2) is False  # already terminal
                assert await pool.ping() is True
            finally:
                await pool.close()

    run(main())


def test_pool_propagates_shed_and_eval_errors(pool_kwargs):
    async def main():
        limits = GatewayLimits(max_inflight=1)
        host = Host()
        async with Gateway(host, limits=limits) as gw:
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, **pool_kwargs
            )
            try:
                # Evaluation errors surface unchanged.
                with pytest.raises(GatewayRequestError):
                    await pool.eval("s", "(car 5)", timeout=30)
                # Backpressure propagates: a busy reply is the caller's
                # signal, never an excuse to retry on another connection
                # (that would double the pressure).
                rid = await pool.submit(
                    "s", "(define (f n) (if (= n 0) 0 (f (- n 1)))) (f 200000)"
                )
                with pytest.raises(GatewayBusy):
                    await pool.submit("s", "(+ 1 1)")
                await pool.result(rid, timeout=60)
            finally:
                await pool.close()

    run(main())


# -- reconnect -------------------------------------------------------------


def test_pool_reconnects_dead_connection(pool_kwargs):
    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, **pool_kwargs
            )
            try:
                # Sever one connection underneath the pool.
                victim = pool._clients[0]
                victim._writer.close()
                await asyncio.sleep(0.05)  # EOF reaches the read loop
                # The pool keeps serving throughout...
                for i in range(4):
                    assert await pool.eval("s", f"(+ {i} 0)") == str(i)
                # ...and restores the dead slot in the background.
                deadline = time.monotonic() + 30.0
                while pool.counters["client.pool.reconnects"] < 1:
                    assert time.monotonic() < deadline, "never reconnected"
                    await asyncio.sleep(0.01)
                assert pool.pool_stats()["client.pool.live"] == 2
            finally:
                await pool.close()

    run(main())


# -- hedging ---------------------------------------------------------------


def test_hedged_eval_wins_on_backup_when_primary_stalls(pool_kwargs):
    """Slot 0's result path is tarpitted; with a short hedge delay the
    backup attempt on the other connection answers first and the loser
    is cancelled server-side (fire-and-forget)."""

    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, hedge_delay=0.02, **pool_kwargs
            )
            try:
                slow = pool._clients[0]
                real_result = slow.result

                async def tarpit_result(request, *, timeout=None):
                    await asyncio.sleep(0.5)
                    return await real_result(request, timeout=timeout)

                slow.result = tarpit_result  # type: ignore[method-assign]
                # Round-robin starts at slot 0, so the primary lands on
                # the tarpitted connection.
                value = await pool.eval("s", "(+ 40 2)", hedge=True, timeout=30)
                assert value == "42"
                assert pool.counters["client.hedge.launched"] == 1
                assert pool.counters["client.hedge.wins"] == 1
                assert pool.counters["client.hedge.cancelled"] == 1
            finally:
                await pool.close()

    run(main())


def test_hedged_eval_skips_backup_when_primary_is_fast(pool_kwargs):
    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, hedge=True, hedge_delay=5.0, **pool_kwargs
            )
            try:
                assert await pool.eval("s", "(+ 1 1)") == "2"
                assert pool.counters["client.hedge.launched"] == 0
            finally:
                await pool.close()

    run(main())


def test_hedge_delay_derives_from_observed_p99(pool_kwargs):
    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, **pool_kwargs
            )
            try:
                assert pool.hedge_delay() == 0.05  # default before samples
                for _ in range(20):
                    await pool.eval("s", "(+ 1 1)")
                delay = pool.hedge_delay()
                assert 0.001 <= delay < 5.0
                ordered = sorted(pool._latencies)
                assert delay == pytest.approx(
                    max(0.001, ordered[int(0.99 * len(ordered))]), rel=1e-6
                )
            finally:
                await pool.close()

    run(main())


def test_pool_stats_merges_server_and_client_counters(pool_kwargs):
    async def main():
        async with serving() as (gw, _):
            pool = await GatewayClientPool.connect(
                gw.host, gw.port, size=2, **pool_kwargs
            )
            try:
                await pool.eval("s", "(+ 1 1)")
                stats = await pool.stats()
                assert stats["gateway.completed"] == 1
                assert stats["client.pool.size"] == 2
                assert "client.hedge.launched" in stats
            finally:
                await pool.close()

    run(main())
