"""The gateway error paths: malformed/oversize frames, unknown ops,
disconnect mid-request, quota refusals, and backend fault containment.
The shed contract under real overload is exercised end-to-end by
``benchmarks/bench_gateway.py``."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import GatewayBusy, HostSaturated
from repro.gateway import Gateway, GatewayClient, GatewayLimits
from repro.host import Host

from tests.gateway.conftest import run, serving

LOOP = "(let loop ((i 0)) (loop (+ i 1)))"


async def _raw_connection(gw):
    """A raw reader/writer pair (no client), for speaking bad frames."""
    return await asyncio.open_connection(gw.host, gw.port)


async def _read_frame(reader):
    line = await reader.readline()
    assert line, "server closed unexpectedly"
    return json.loads(line)


# -- malformed frames -----------------------------------------------------


def test_malformed_frame_recoverable():
    async def main():
        async with serving() as (gw, _):
            reader, writer = await _raw_connection(gw)
            writer.write(b"{this is not json}\n")
            await writer.drain()
            reply = await _read_frame(reader)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad-frame"
            # The connection survives and stays line-synchronised.
            writer.write(
                b'{"op":"submit","id":1,"session":"s","source":"(+ 1 2)"}\n'
            )
            await writer.drain()
            reply = await _read_frame(reader)
            assert reply["ok"] is True
            assert gw.stats["gateway.protocol_errors"] == 1
            writer.close()
            await writer.wait_closed()

    run(main())


def test_non_object_frame_rejected():
    async def main():
        async with serving() as (gw, _):
            reader, writer = await _raw_connection(gw)
            writer.write(b"[1,2,3]\n")
            await writer.drain()
            reply = await _read_frame(reader)
            assert reply["error"]["code"] == "bad-frame"
            writer.close()
            await writer.wait_closed()

    run(main())


def test_blank_lines_ignored():
    async def main():
        async with serving() as (gw, _):
            reader, writer = await _raw_connection(gw)
            writer.write(b"\n\n")
            writer.write(b'{"op":"ping","id":1}\n')
            await writer.drain()
            reply = await _read_frame(reader)
            assert reply["id"] == 1 and reply["ok"] is True
            writer.close()
            await writer.wait_closed()

    run(main())


# -- oversize frames ------------------------------------------------------


def test_oversize_frame_is_fatal():
    async def main():
        limits = GatewayLimits(max_frame_bytes=1024)
        async with serving(Host(), limits=limits) as (gw, _):
            reader, writer = await _raw_connection(gw)
            frame = {"op": "submit", "id": 1, "session": "s", "source": "x" * 4096}
            writer.write(json.dumps(frame).encode() + b"\n")
            await writer.drain()
            reply = await _read_frame(reader)
            assert reply["error"]["code"] == "oversize"
            # The server closes: EOF follows.
            assert await reader.readline() == b""
            assert gw.stats["gateway.protocol_errors"] == 1
            writer.close()
            await writer.wait_closed()

    run(main())


def test_frame_under_the_limit_is_fine():
    async def main():
        limits = GatewayLimits(max_frame_bytes=4096)
        async with serving(Host(), limits=limits) as (gw, client):
            value = await client.eval("s", "(string-length \"%s\")" % ("y" * 512))
            assert value == "512"

    run(main())


# -- unknown ops / requests / invalid fields ------------------------------


def test_unknown_op():
    async def main():
        async with serving() as (gw, _):
            reader, writer = await _raw_connection(gw)
            writer.write(b'{"op":"frobnicate","id":1}\n')
            await writer.drain()
            reply = await _read_frame(reader)
            assert reply["error"]["code"] == "unknown-op"
            writer.close()
            await writer.wait_closed()

    run(main())


def test_unknown_request_id():
    async def main():
        async with serving() as (_, client):
            for op in ("poll", "result", "cancel"):
                with pytest.raises(Exception) as info:
                    await client.call(op, request=999)
                assert getattr(info.value, "code", None) == "unknown-request"

    run(main())


def test_invalid_submit_fields():
    async def main():
        async with serving() as (gw, _):
            reader, writer = await _raw_connection(gw)
            bad_frames = [
                {"op": "submit", "id": 1},  # no session/source
                {"op": "submit", "id": 2, "session": "", "source": "1"},
                {"op": "submit", "id": 3, "session": "s", "source": 42},
                {"op": "submit", "id": 4, "session": "s", "source": "1", "max_steps": -1},
                {"op": "submit", "id": 5, "session": "s", "source": "1", "deadline_ms": 0},
                {"op": "submit", "id": 6, "session": "s", "source": "1", "tenant": 9},
            ]
            for frame in bad_frames:
                writer.write(json.dumps(frame).encode() + b"\n")
            await writer.drain()
            for frame in bad_frames:
                reply = await _read_frame(reader)
                assert reply["id"] == frame["id"]
                assert reply["error"]["code"] == "invalid"
            assert gw.stats["gateway.protocol_errors"] == len(bad_frames)
            writer.close()
            await writer.wait_closed()

    run(main())


# -- disconnect mid-request -----------------------------------------------


def test_disconnect_cancels_inflight_requests():
    async def main():
        host = Host()
        async with serving(host) as (gw, _):
            doomed = await GatewayClient.connect(gw.host, gw.port)
            await doomed.submit("s", LOOP)
            await doomed.submit("s", LOOP)
            await doomed.close()
            # The gateway notices the disconnect, cancels the handles,
            # and the backend drains to idle — no leaked work.
            for _ in range(200):
                if gw.stats["gateway.tracked_requests"] == 0 and host.idle:
                    break
                await asyncio.sleep(0.01)
            assert gw.stats["gateway.disconnect_cancels"] == 2
            assert gw.stats["gateway.tracked_requests"] == 0
            assert host.idle
            assert gw.quota.inflight == 0

    run(main())


def test_disconnect_with_terminal_requests_drops_records():
    async def main():
        async with serving() as (gw, _):
            client = await GatewayClient.connect(gw.host, gw.port)
            rid = await client.submit("s", "(+ 1 1)")
            await client.result(rid)
            await client.close()
            for _ in range(100):
                if gw.stats["gateway.tracked_requests"] == 0:
                    break
                await asyncio.sleep(0.01)
            assert gw.stats["gateway.tracked_requests"] == 0
            assert gw.stats["gateway.disconnect_cancels"] == 0

    run(main())


# -- quota refusal --------------------------------------------------------


def test_inflight_cap_sheds_with_retry_after():
    async def main():
        limits = GatewayLimits(max_inflight=1)
        async with serving(Host(), limits=limits) as (gw, client):
            rid = await client.submit("s", LOOP)  # occupies the one slot
            with pytest.raises(GatewayBusy) as info:
                await client.submit("s", "(+ 1 1)")
            assert info.value.retry_after_ms >= 1
            # GatewayBusy IS a HostSaturated: remote refusals unify
            # with the in-process backpressure type.
            assert isinstance(info.value, HostSaturated)
            assert gw.stats["gateway.shed"] == 1
            await client.cancel(rid)
            # The terminal state frees the slot.
            with pytest.raises(Exception):
                await client.result(rid)
            assert await client.eval("s", "(+ 1 1)") == "2"

    run(main())


def test_tenant_rate_limit_sheds():
    async def main():
        limits = GatewayLimits(tenant_rate=5.0, tenant_burst=2)
        async with serving(Host(), limits=limits) as (gw, client):
            await client.eval("s", "(+ 1 1)", tenant="t")
            await client.eval("s", "(+ 1 1)", tenant="t")
            with pytest.raises(GatewayBusy) as info:
                await client.submit("s", "(+ 1 1)", tenant="t")
            assert info.value.retry_after_ms >= 1

    run(main())


def test_backend_saturation_maps_to_busy():
    async def main():
        # A tiny host queue, a permissive gateway: the *backend*'s
        # HostSaturated comes back as the same busy contract.
        host = Host(max_pending=1)
        async with serving(host) as (gw, client):
            await client.submit("s", LOOP)
            with pytest.raises(GatewayBusy):
                await client.submit("s", "(+ 1 1)")
            assert gw.stats["gateway.shed"] == 1
            assert gw.quota.inflight == 1  # the shed submit released its slot

    run(main())


# -- backend fault containment --------------------------------------------


def test_backend_fault_contained_to_internal_reply():
    async def main():
        # Bad session_defaults make every auto-create explode inside
        # the backend; the gateway contains it as an `internal` reply
        # and keeps serving.
        gw = Gateway(Host(), session_defaults={"engine": "no-such-engine"})
        async with gw:
            client = await GatewayClient.connect(gw.host, gw.port)
            try:
                with pytest.raises(Exception) as info:
                    await client.submit("s", "(+ 1 1)")
                assert getattr(info.value, "code", None) == "internal"
                assert await client.ping() is True  # connection survives
                assert gw.quota.inflight == 0  # the slot was released
            finally:
                await client.close()

    run(main())


def test_eval_error_does_not_poison_the_session():
    async def main():
        async with serving() as (_, client):
            with pytest.raises(Exception):
                rid = await client.submit("s", "(+ 1 nope)")
                await client.result(rid)
            assert await client.eval("s", "(+ 1 1)") == "2"

    run(main())
