"""The gateway happy paths: submit/poll/result/cancel/stats over Host
and Cluster backends, streaming, budgets over the wire, and obs."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import Cluster
from repro.errors import GatewayRequestError
from repro.gateway import Gateway, GatewayClient, GatewayLimits
from repro.host import Host
from repro.obs import Recorder

from tests.gateway.conftest import run, serving

LOOP = "(let loop ((i 0)) (loop (+ i 1)))"


# -- request round trips --------------------------------------------------


def test_eval_round_trip():
    async def main():
        async with serving() as (gw, client):
            assert await client.eval("alice", "(+ 1 2)") == "3"
            # Session state persists across requests.
            await client.eval("alice", "(define x 40)")
            assert await client.eval("alice", "(+ x 2)") == "42"
            assert gw.stats["gateway.completed"] == 3

    run(main())


def test_sessions_are_isolated_per_name():
    async def main():
        async with serving() as (_, client):
            await client.eval("a", "(define who 'a)")
            await client.eval("b", "(define who 'b)")
            assert await client.eval("a", "who") == "a"
            assert await client.eval("b", "who") == "b"

    run(main())


def test_submit_then_poll_then_result():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", "(* 6 7)")
            state = await client.poll(rid)
            assert state["state"] in ("pending", "running", "done")
            assert await client.result(rid) == "42"
            # Poll after terminal returns the cached outcome.
            state = await client.poll(rid)
            assert state["state"] == "done"
            assert state["value"] == "42"

    run(main())


def test_concurrent_requests_interleave():
    async def main():
        async with serving() as (_, client):
            rids = [
                await client.submit("s", f"(+ {i} {i})") for i in range(10)
            ]
            values = await asyncio.gather(*(client.result(r) for r in rids))
            assert values == [str(2 * i) for i in range(10)]

    run(main())


def test_many_connections_share_one_gateway():
    async def main():
        async with serving() as (gw, _):
            clients = await asyncio.gather(
                *(GatewayClient.connect(gw.host, gw.port) for _ in range(8))
            )
            try:
                values = await asyncio.gather(
                    *(c.eval(f"s{i}", f"(* {i} 2)") for i, c in enumerate(clients))
                )
                assert values == [str(i * 2) for i in range(8)]
            finally:
                for c in clients:
                    await c.close()

    run(main())


def test_cancel_running_request():
    async def main():
        async with serving() as (gw, client):
            rid = await client.submit("s", LOOP)
            assert await client.cancel(rid) is True
            with pytest.raises(GatewayRequestError) as info:
                await client.result(rid)
            assert info.value.code == "cancelled"
            # A terminal request is no longer cancellable.
            assert await client.cancel(rid) is False
            assert gw.stats["gateway.cancelled"] == 1

    run(main())


def test_ping():
    async def main():
        async with serving() as (_, client):
            assert await client.ping() is True

    run(main())


# -- per-request budgets over the wire ------------------------------------


def test_max_steps_enforced_remotely():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", LOOP, max_steps=5000)
            with pytest.raises(GatewayRequestError) as info:
                await client.result(rid)
            assert info.value.code == "eval-error"
            assert "StepBudgetExceeded" in str(info.value)

    run(main())


def test_deadline_enforced_remotely():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", LOOP, deadline=0.05)
            with pytest.raises(GatewayRequestError) as info:
                await client.result(rid)
            assert "DeadlineExceeded" in str(info.value)

    run(main())


def test_result_timeout_leaves_request_running():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", LOOP, max_steps=2_000_000)
            with pytest.raises(TimeoutError):
                await client.result(rid, timeout=0.05)
            state = await client.poll(rid)
            assert state["state"] in ("pending", "running")
            await client.cancel(rid)

    run(main())


# -- streaming ------------------------------------------------------------


def test_stream_delivers_terminal_transition():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", "(+ 2 3)", stream=True)
            states = [ev["state"] async for ev in client.events(rid)]
            assert states[-1] == "done"
            assert set(states) <= {"running", "done"}

    run(main())


def test_stream_carries_value_and_steps():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", "(* 7 6)", stream=True)
            last = None
            async for ev in client.events(rid):
                last = ev
            assert last["value"] == "42"
            assert last["steps"] > 0

    run(main())


def test_stream_delivers_session_output_host_backend():
    """Host backend: display/write output streams as ``output`` events
    interleaved with the state transitions, all output arriving before
    the terminal state event."""

    async def main():
        async with serving() as (gw, client):
            rid = await client.submit(
                "s", '(display "hel") (display "lo") (+ 1 2)', stream=True
            )
            events = [ev async for ev in client.events(rid)]
            output = [ev["text"] for ev in events if ev.get("event") == "output"]
            assert "".join(output) == "hello"
            # Every output event precedes the terminal state event.
            terminal_at = max(
                i for i, ev in enumerate(events) if ev.get("state") == "done"
            )
            last_output_at = max(
                i for i, ev in enumerate(events) if ev.get("event") == "output"
            )
            assert last_output_at < terminal_at
            assert gw.stats["gateway.output_events"] >= 1

    run(main())


def test_stream_delivers_session_output_cluster_backend():
    """Cluster backend: the shard returns the output delta with the
    result, so exactly one ``output`` event lands just before the
    terminal state event."""

    async def main():
        cluster = Cluster(workers=0, session_defaults={"prelude": False})
        try:
            async with Gateway(cluster) as gw:
                client = await GatewayClient.connect(gw.host, gw.port)
                try:
                    rid = await client.submit(
                        "c", '(display "from-shard") 7', stream=True
                    )
                    events = [ev async for ev in client.events(rid)]
                    output = [
                        ev["text"] for ev in events if ev.get("event") == "output"
                    ]
                    assert output == ["from-shard"]
                    assert events[-1]["state"] == "done"
                    assert events[-1]["value"] == "7"
                finally:
                    await client.close()
        finally:
            cluster.close()

    run(main())


def test_no_output_events_without_stream():
    """A plain submit gets no event frames: output from sessions other
    clients are streaming never leaks into a non-streaming request."""

    async def main():
        async with serving() as (gw, client):
            rid = await client.submit("s", '(display "quiet") (+ 1 1)')
            assert await client.result(rid) == "2"
            assert gw.stats["gateway.output_events"] == 0

    run(main())


def test_output_cursor_skips_prior_session_output():
    """A second streamed request on the same session sees only its own
    output, not the backlog the first request produced."""

    async def main():
        async with serving() as (_, client):
            rid1 = await client.submit("s", '(display "first")', stream=True)
            async for _ in client.events(rid1):
                pass
            rid2 = await client.submit("s", '(display "second")', stream=True)
            output = [
                ev["text"]
                async for ev in client.events(rid2)
                if ev.get("event") == "output"
            ]
            assert "".join(output) == "second"

    run(main())


def test_events_requires_stream_submit():
    async def main():
        async with serving() as (_, client):
            rid = await client.submit("s", "(+ 1 1)")
            await client.result(rid)
            with pytest.raises(GatewayRequestError):
                async for _ in client.events(rid):
                    pass

    run(main())


# -- the cluster backend --------------------------------------------------


def test_cluster_backend_round_trip():
    async def main():
        cluster = Cluster(workers=0, session_defaults={"prelude": False})
        try:
            async with Gateway(cluster) as gw:
                client = await GatewayClient.connect(gw.host, gw.port)
                try:
                    assert await client.eval("c", "(+ 20 22)") == "42"
                    await client.eval("c", "(define saved 7)")
                    assert await client.eval("c", "saved") == "7"
                    stats = await client.stats()
                    assert stats["cluster.completed"] == 3
                    assert stats["gateway.completed"] == 3
                finally:
                    await client.close()
        finally:
            cluster.close()

    run(main())


def test_cluster_backend_eval_error_carries_original_type():
    async def main():
        cluster = Cluster(workers=0, session_defaults={"prelude": False})
        try:
            async with Gateway(cluster) as gw:
                client = await GatewayClient.connect(gw.host, gw.port)
                try:
                    rid = await client.submit("c", "(+ 1 nope)")
                    with pytest.raises(GatewayRequestError) as info:
                        await client.result(rid)
                    assert "UnboundVariableError" in str(info.value)
                finally:
                    await client.close()
        finally:
            cluster.close()

    run(main())


def test_cluster_session_defaults_rejected_on_gateway():
    with pytest.raises(ValueError):
        Gateway(Cluster(workers=0), session_defaults={"prelude": False})


def test_backend_type_checked():
    with pytest.raises(TypeError):
        Gateway(object())


# -- stats and observability ----------------------------------------------


def test_stats_op_merges_backend_and_gateway():
    async def main():
        async with serving() as (_, client):
            await client.eval("s", "(+ 1 1)")
            stats = await client.stats()
            assert stats["gateway.submits"] == 1
            assert stats["gateway.inflight"] == 0
            assert stats["host.ticks"] > 0

    run(main())


def test_requests_land_in_recorder_as_complete_events():
    async def main():
        rec = Recorder()
        async with serving(Host(), record=rec) as (_, client):
            await client.eval("s", "(+ 1 1)")
            await client.eval("s", "(+ 2 2)")
        events = rec.events_of("gateway.request")
        assert len(events) == 2
        assert all(e.phase == "X" and e.dur > 0 for e in events)

    run(main())


def test_request_latency_histogram_populated():
    async def main():
        async with serving() as (gw, client):
            await client.eval("s", "(+ 1 1)")
            hist = gw.histograms()["gateway.request_us"]
            assert hist["count"] == 1

    run(main())


def test_tenant_rides_through_to_the_backend_handle():
    async def main():
        host = Host()
        async with serving(host) as (_, client):
            rid = await client.submit("s", "(+ 1 1)", tenant="acme")
            await client.result(rid)
        # The session's handle carried the tenant label.
        # (The handle is gone from the gateway registry; check metrics
        # instead: the submit was admitted under the tenant.)
        assert host["s"].metrics.submits == 1

    run(main())


def test_gateway_restart_not_allowed():
    async def main():
        gw = Gateway(Host())
        await gw.start()
        with pytest.raises(Exception):
            await gw.start()
        await gw.close()
        await gw.close()  # idempotent

    run(main())


def test_limits_surface_on_gateway():
    gw = Gateway(Host(), limits=GatewayLimits(max_inflight=7))
    assert gw.limits.max_inflight == 7
    assert "new" in repr(gw)
