"""Clock-skew regression tests: every deadline/quota computation in
the serving stack reads the injected monotonic clock (``repro.clock``),
never the wall clock — so an NTP step, VM suspend, or a user changing
the system time can neither fire nor suppress a deadline, and tests
can drive expiry by hand without sleeping."""

from __future__ import annotations

import time

import pytest

from repro.clock import MONOTONIC, ManualClock
from repro.cluster import Cluster
from repro.errors import DeadlineExceeded, HostSaturated
from repro.gateway import GatewayLimits, QuotaTable, TokenBucket
from repro.host.handle import HandleState

from .conftest import run, serving


# -- the clock itself ------------------------------------------------------


def test_manual_clock_advances_and_refuses_reverse():
    clock = ManualClock(10.0)
    assert clock() == 10.0
    assert clock.advance(2.5) == 12.5
    assert clock() == 12.5
    with pytest.raises(ValueError):
        clock.advance(-0.1)
    assert clock() == 12.5  # unchanged after the refused step


def test_production_clock_is_monotonic():
    assert MONOTONIC is time.monotonic


# -- quota arithmetic follows the injected clock, not real time ------------


def test_token_bucket_refills_on_injected_clock_only():
    clock = ManualClock()
    bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
    ok, _ = bucket.try_acquire()
    assert ok
    ok, wait = bucket.try_acquire()
    assert not ok
    assert wait == pytest.approx(0.1)
    # Real time passing does nothing: the bucket reads only `clock`.
    time.sleep(0.02)
    ok, _ = bucket.try_acquire()
    assert not ok
    clock.advance(0.1)
    ok, _ = bucket.try_acquire()
    assert ok


def test_quota_table_rate_refusals_follow_injected_clock():
    clock = ManualClock()
    limits = GatewayLimits(tenant_rate=2.0, tenant_burst=1)
    table = QuotaTable(limits, clock=clock)
    assert table.admit("t") is None
    refusal = table.admit("t")
    assert refusal is not None
    reason, wait = refusal
    assert reason == "tenant-rate"
    assert wait == pytest.approx(0.5)
    clock.advance(0.5)
    assert table.admit("t") is None


def test_gateway_threads_clock_into_quota():
    """The gateway's ``clock=`` lands on its QuotaTable, so rate
    refusal math over the wire is driven by the injected clock."""
    clock = ManualClock()

    async def scenario():
        limits = GatewayLimits(tenant_rate=1.0, tenant_burst=1)
        async with serving(limits=limits, clock=clock) as (gw, client):
            assert gw.quota.clock is clock
            assert await client.eval("s", "1", tenant="t") == "1"
            with pytest.raises(HostSaturated) as exc_info:
                await client.eval("s", "2", tenant="t")
            # retry_after_ms reflects the manual clock's refill math:
            # a full token at 1 req/s is 1000ms away.
            assert 900 <= exc_info.value.retry_after_ms <= 1000
            clock.advance(1.0)
            assert await client.eval("s", "3", tenant="t") == "3"

    run(scenario())


# -- cluster deadlines follow the injected clock ---------------------------


def test_cluster_queued_deadline_expires_by_injected_clock():
    """A queued request's wall-clock deadline fires when the *injected*
    clock passes it — driven here by hand while the dispatcher is busy,
    no real waiting involved."""
    clock = ManualClock()
    with Cluster(workers=0, clock=clock) as c:
        # Occupy the single dispatcher thread with a slow request so
        # the second one sits queued while we advance the clock.
        slow = c.submit_async(
            "busy", "(define (loop n) (if (= n 0) 0 (loop (- n 1)))) (loop 500000)"
        )
        doomed = c.submit_async("victim", "(+ 1 1)", deadline=5.0)
        clock.advance(10.0)  # the deadline passes without any real time
        assert doomed.wait(timeout=30.0)
        assert doomed.state is HandleState.FAILED
        with pytest.raises(DeadlineExceeded):
            doomed.result()
        slow.wait(timeout=30.0)


def test_cluster_deadline_not_fired_early_by_real_time():
    """Conversely: real time passing does not expire a deadline when
    the injected clock stands still."""
    clock = ManualClock()
    with Cluster(workers=0, clock=clock) as c:
        handle = c.submit_async("s", "(+ 20 22)", deadline=0.001)
        assert handle.wait(timeout=30.0)
        assert handle.result() == "42"
