"""Admission control: token buckets and the per-tenant quota table
(driven by an injected fake clock — no sleeps)."""

from __future__ import annotations

import pytest

from repro.gateway.quota import GatewayLimits, QuotaTable, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- TokenBucket ----------------------------------------------------------


def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
    assert [bucket.try_acquire()[0] for _ in range(3)] == [True, True, True]
    ok, wait = bucket.try_acquire()
    assert not ok
    assert wait == pytest.approx(0.1)  # one token at 10/s


def test_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
    bucket.try_acquire(), bucket.try_acquire()
    clock.advance(0.1)  # one token back
    assert bucket.try_acquire()[0]
    assert not bucket.try_acquire()[0]


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
    clock.advance(60.0)  # a long idle spell banks nothing beyond burst
    assert bucket.try_acquire()[0]
    assert bucket.try_acquire()[0]
    assert not bucket.try_acquire()[0]


def test_bucket_retry_after_shrinks_as_tokens_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
    bucket.try_acquire()
    _, wait1 = bucket.try_acquire()
    clock.advance(0.25)
    _, wait2 = bucket.try_acquire()
    assert wait2 < wait1


def test_bucket_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        TokenBucket(rate=0)


# -- QuotaTable -----------------------------------------------------------


def test_global_inflight_cap():
    table = QuotaTable(GatewayLimits(max_inflight=2, tenant_max_inflight=10))
    assert table.admit("a") is None
    assert table.admit("b") is None
    reason, wait = table.admit("c")
    assert reason == "inflight"
    assert wait > 0
    table.release("a")
    assert table.admit("c") is None


def test_tenant_inflight_cap():
    table = QuotaTable(GatewayLimits(max_inflight=100, tenant_max_inflight=1))
    assert table.admit("a") is None
    reason, _ = table.admit("a")
    assert reason == "tenant-inflight"
    # Another tenant is unaffected.
    assert table.admit("b") is None
    table.release("a")
    assert table.admit("a") is None


def test_anonymous_requests_share_one_bucket():
    table = QuotaTable(GatewayLimits(max_inflight=100, tenant_max_inflight=1))
    assert table.admit(None) is None
    reason, _ = table.admit(None)
    assert reason == "tenant-inflight"
    table.release(None)
    assert table.admit(None) is None


def test_tenant_rate_limit_with_retry_after():
    clock = FakeClock()
    limits = GatewayLimits(
        max_inflight=100, tenant_max_inflight=100, tenant_rate=10.0, tenant_burst=1
    )
    table = QuotaTable(limits, clock=clock)
    assert table.admit("a") is None
    reason, wait = table.admit("a")
    assert reason == "tenant-rate"
    assert wait == pytest.approx(0.1)
    clock.advance(0.1)
    assert table.admit("a") is None
    # Rate buckets are per tenant.
    assert table.admit("b") is None


def test_release_is_balanced():
    table = QuotaTable(GatewayLimits(max_inflight=4))
    table.admit("a")
    table.admit("a")
    table.release("a")
    table.release("a")
    assert table.inflight == 0
    assert table.tenant_inflight == {}
