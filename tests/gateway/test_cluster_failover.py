"""Shard-failure transparency under live gateway load.

The contract (``docs/SERVING.md``): every frame the gateway *accepts*
gets a terminal answer — a recovered result when the killed shard's
session had a snapshot to replay, a structured error with
``recovered: false`` when it did not — and never a hang.  The matrix
below SIGKILLs a shard at three points in a request's life
(pre-dispatch, mid-execute, post-result-pre-reply), with and without a
snapshot present, and checks the answer, the ``recovered`` field, and
the ``gateway.recovery.*`` counters every time.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time

import pytest

from repro.cluster import Cluster
from repro.cluster.shard import ShardRuntime
from repro.errors import GatewayRequestError
from repro.gateway import Gateway, GatewayClient

from .conftest import run

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard chaos tests rely on fork start method",
)

# Long enough to SIGKILL the shard mid-evaluation with a wide margin,
# short enough that the replay after recovery stays test-sized.
_LONG_SOURCE = (
    "(define (loop n) (if (= n 0) 42 (loop (- n 1)))) (loop 800000)"
)


def _suicidal_shard_main(flag_path: str):
    """A ``shard_main`` that SIGKILLs itself *after* computing a
    submit whose source carries the die marker but *before* putting
    the reply — exactly the post-result-pre-reply window.  The flag
    file makes the death one-shot, so the replay on the respawned
    worker survives."""

    def main(index, cmd_queue, result_queue):
        runtime = ShardRuntime(index)
        while True:
            request_id, op, payload = cmd_queue.get()
            if op == "shutdown":
                result_queue.put((request_id, "ok", None))
                return
            try:
                reply = runtime.handle(op, payload)
            except BaseException as exc:  # noqa: BLE001 - mirror shard_main
                result_queue.put((request_id, "err", f"{type(exc).__name__}: {exc}"))
                continue
            if (
                op == "submit"
                and "die-post-result" in (payload.get("source") or "")
                and not os.path.exists(flag_path)
            ):
                with open(flag_path, "w"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
            result_queue.put((request_id, "ok", reply))

    return main


@pytest.mark.parametrize("snapshotted", [True, False], ids=["snapshot", "no-snapshot"])
@pytest.mark.parametrize("kill_point", ["pre-dispatch", "mid-execute", "post-result"])
def test_shard_death_transparency(kill_point, snapshotted, tmp_path, monkeypatch):
    if kill_point == "post-result":
        # _ProcessShard._spawn targets the `shard_main` name in the
        # cluster module; patching it before the fork means every
        # worker child runs the suicidal loop.
        monkeypatch.setattr(
            "repro.cluster.cluster.shard_main",
            _suicidal_shard_main(str(tmp_path / "died-once")),
        )

    async def scenario():
        cluster = Cluster(workers=2, session_defaults={"prelude": False})
        try:
            async with Gateway(cluster) as gw:
                client = await GatewayClient.connect(gw.host, gw.port)
                try:
                    await _one_case(cluster, gw, client)
                finally:
                    await client.close()
        finally:
            cluster.close()

    async def _one_case(cluster, gw, client):
        sid = "victim"
        if snapshotted:
            # One completed request => the store holds a snapshot.
            assert await client.eval(sid, "(define seed 33) seed", timeout=60) == "33"
        pid = cluster.shards[cluster.shard_for(sid)].process.pid

        if kill_point == "pre-dispatch":
            os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            source = "(* seed 2)" if snapshotted else "(+ 1 1)"
            expected = "66" if snapshotted else "2"
            rid = await client.submit(sid, source)
        elif kill_point == "mid-execute":
            expected = "42"
            rid = await client.submit(sid, _LONG_SOURCE)
            deadline = time.monotonic() + 30.0
            while (await client.poll(rid))["state"] == "pending":
                assert time.monotonic() < deadline, "request never started"
                await asyncio.sleep(0.002)
            os.kill(pid, signal.SIGKILL)
        else:  # post-result: the worker kills itself pre-reply
            expected = "42"
            rid = await client.submit(sid, '(display "die-post-result") (+ 40 2)')

        # The accepted frame always reaches a terminal answer — never
        # a hang (the timeout below is the no-hang gate).
        if snapshotted:
            assert await client.result(rid, timeout=120) == expected
            terminal = await client.poll(rid)
            assert terminal.get("recovered") is True
            stats = await client.stats()
            assert stats["gateway.recovery.replays"] == 1
            assert stats["gateway.recovery.failures"] == 0
            assert stats["cluster.recoveries"] == 1
        else:
            with pytest.raises(GatewayRequestError) as info:
                await client.result(rid, timeout=120)
            assert "ShardDied" in str(info.value)
            terminal = await client.poll(rid)
            assert terminal.get("recovered") is False
            stats = await client.stats()
            assert stats["gateway.recovery.failures"] == 1
            assert stats["gateway.recovery.replays"] == 0
        assert stats["cluster.respawns"] == 1

        # The cluster keeps serving the same session after the death.
        assert await client.eval(sid, "(+ 2 3)", timeout=60) == "5"

    run(scenario())


def test_disconnect_cancels_queued_cluster_work():
    """A client that vanishes with inflight requests against a Cluster
    backend must not leak shard-side work: its queued requests are
    cancelled on the cluster front (regression: ``Cluster.stats()``
    shows the cancellations and the queue drains)."""

    async def main():
        cluster = Cluster(workers=0, session_defaults={"prelude": False})
        try:
            async with Gateway(cluster) as gw:
                client = await GatewayClient.connect(gw.host, gw.port)
                # The first request occupies the single dispatcher; the
                # next two sit queued (still cancellable) when we leave.
                await client.submit(
                    "busy",
                    "(define (loop n) (if (= n 0) 0 (loop (- n 1)))) (loop 300000)",
                )
                await client.submit("q1", "(+ 1 1)")
                await client.submit("q2", "(+ 2 2)")
                await client.close()  # abandon all three inflight

                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if cluster.stats["cluster.cancellations"] >= 2:
                        break
                    await asyncio.sleep(0.01)
                assert cluster.stats["cluster.cancellations"] >= 2
                assert gw.stats["gateway.disconnect_cancels"] == 3

                # The queue drains completely once the running request
                # finishes — nothing abandoned keeps a slot.
                while time.monotonic() < deadline:
                    if cluster.stats["cluster.queue_depth"] == 0:
                        break
                    await asyncio.sleep(0.01)
                assert cluster.stats["cluster.queue_depth"] == 0
        finally:
            cluster.close()

    run(main())
