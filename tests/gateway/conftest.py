"""Shared helpers for the gateway tests: no pytest-asyncio in the
toolchain, so each test drives one fresh event loop via ``run``."""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Any, AsyncIterator, Awaitable, TypeVar

from repro.gateway import Gateway, GatewayClient
from repro.host import Host

T = TypeVar("T")


def run(coro: Awaitable[T]) -> T:
    return asyncio.run(coro)


@asynccontextmanager
async def serving(
    backend: Any = None, **gateway_kwargs: Any
) -> AsyncIterator[tuple[Gateway, GatewayClient]]:
    """A started gateway (default backend: a fresh Host) plus one
    connected client; both torn down on exit."""
    backend = backend if backend is not None else Host()
    async with Gateway(backend, **gateway_kwargs) as gw:
        client = await GatewayClient.connect(gw.host, gw.port)
        try:
            yield gw, client
        finally:
            await client.close()
