"""The NDJSON frame codec: round-trips, framing errors, and a fuzz
pass that feeds randomly-generated frames through encode/decode."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import FrameError
from repro.gateway.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    decode_frame,
    encode_frame,
    error_frame,
)

# -- round trips ----------------------------------------------------------


FRAMES = [
    {"op": "submit", "id": 1, "session": "alice", "source": "(+ 1 2)"},
    {"op": "submit", "id": 2, "session": "s", "source": "", "stream": True},
    {"op": "poll", "id": 3, "request": 7},
    {"op": "result", "id": 4, "request": 7, "timeout_ms": 250.5},
    {"op": "stats", "id": None},
    {"id": 1, "ok": True, "request": 7, "state": "pending"},
    {"event": "state", "request": 7, "state": "done", "value": "λ→3", "steps": 42},
]


@pytest.mark.parametrize("frame", FRAMES, ids=[str(i) for i in range(len(FRAMES))])
def test_round_trip(frame):
    wire = encode_frame(frame)
    assert wire.endswith(b"\n")
    assert b"\n" not in wire[:-1]  # one frame, one line
    assert decode_frame(wire) == frame


def test_unicode_survives():
    frame = {"op": "submit", "id": 1, "session": "π", "source": "(define λ 1) ; ✓"}
    assert decode_frame(encode_frame(frame)) == frame


# -- encode errors --------------------------------------------------------


def test_encode_rejects_unserialisable():
    with pytest.raises(FrameError):
        encode_frame({"op": "submit", "source": object()})


# -- decode errors --------------------------------------------------------


def test_decode_rejects_bad_json():
    with pytest.raises(FrameError) as info:
        decode_frame(b"{not json}\n")
    assert info.value.code == "bad-frame"


def test_decode_rejects_non_object():
    for line in (b"[1,2,3]\n", b'"hello"\n', b"42\n", b"null\n"):
        with pytest.raises(FrameError) as info:
            decode_frame(line)
        assert info.value.code == "bad-frame"


def test_decode_rejects_oversize_before_parsing():
    line = b"x" * (MAX_FRAME_BYTES + 1)  # not even valid JSON
    with pytest.raises(FrameError) as info:
        decode_frame(line)
    assert info.value.code == "oversize"


def test_decode_oversize_limit_adjustable():
    frame = encode_frame({"op": "submit", "id": 1, "source": "x" * 100})
    with pytest.raises(FrameError) as info:
        decode_frame(frame, max_bytes=64)
    assert info.value.code == "oversize"
    assert decode_frame(frame)["source"] == "x" * 100


# -- error frames ---------------------------------------------------------


def test_error_frame_shape():
    frame = error_frame(9, "busy", "try later", retry_after_ms=25)
    assert frame == {
        "id": 9,
        "ok": False,
        "error": {"code": "busy", "message": "try later", "retry_after_ms": 25},
    }
    bare = error_frame(None, "bad-frame", "nope")
    assert bare["id"] is None
    assert "retry_after_ms" not in bare["error"]


def test_error_codes_cover_the_spec():
    for code in ("busy", "bad-frame", "oversize", "unknown-op", "internal"):
        assert code in ERROR_CODES
    assert "submit" in OPS and "result" in OPS


# -- fuzz: arbitrary JSON-shaped frames round-trip ------------------------


def _random_value(rng: random.Random, depth: int):
    kinds = ["str", "int", "float", "bool", "none"]
    if depth < 3:
        kinds += ["list", "dict"]
    kind = rng.choice(kinds)
    if kind == "str":
        return "".join(
            rng.choice('abc{}[]",:\\\n\té中 ') for _ in range(rng.randint(0, 20))
        )
    if kind == "int":
        return rng.randint(-(10**12), 10**12)
    if kind == "float":
        return rng.uniform(-1e6, 1e6)
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "none":
        return None
    if kind == "list":
        return [_random_value(rng, depth + 1) for _ in range(rng.randint(0, 4))]
    return {
        f"k{i}": _random_value(rng, depth + 1) for i in range(rng.randint(0, 4))
    }


def test_fuzz_round_trip():
    rng = random.Random(0x5EED)
    for _ in range(200):
        frame = {
            f"field{i}": _random_value(rng, 0) for i in range(rng.randint(1, 6))
        }
        wire = encode_frame(frame)
        assert wire.endswith(b"\n")
        back = decode_frame(wire)
        # JSON round-trip equality (float repr is exact through json).
        assert back == json.loads(json.dumps(frame))


def test_fuzz_garbage_lines_never_crash_the_decoder():
    rng = random.Random(0xBAD)
    for _ in range(200):
        line = bytes(rng.randrange(256) for _ in range(rng.randint(0, 200)))
        try:
            frame = decode_frame(line)
        except FrameError as exc:
            assert exc.code in ("bad-frame", "oversize")
        else:
            assert isinstance(frame, dict)
