"""The shared submit contract (docs/API.md): every frontend —
``Session``, ``Interpreter``, ``Host``, ``Cluster`` — accepts the same
``submit(source, *, max_steps=None, deadline=None, tenant=None)``
keyword surface, returns a handle on the same
:class:`~repro.host.handle.HandleState` state machine, and refuses with
the same exception types (``HostSaturated`` for backpressure,
``DeadlineExceeded`` for a missed deadline, ``SessionCancelled`` +
CANCELLED for a cancel).  One parametrised suite drives all four
through one driver seam, so the contract cannot drift per-tier."""

from __future__ import annotations

import inspect

import pytest

from repro import Cluster, Host, Interpreter, Session
from repro.errors import DeadlineExceeded, HostSaturated, SessionCancelled
from repro.host.handle import HandleState

LOOP = "(let loop ((i 0)) (loop (+ i 1)))"


class _SessionFront:
    name = "session"

    def __init__(self, **limits):
        self.session = Session(prelude=False, **limits)

    def submit(self, source, **kwargs):
        return self.session.submit(source, **kwargs)

    def drive(self, handle):
        """Run until the handle is terminal; never raises."""
        while not handle.done():
            self.session.pump(1 << 14)

    def submit_fn(self):
        return self.session.submit

    def close(self):
        pass


class _InterpreterFront(_SessionFront):
    name = "interpreter"

    def __init__(self, **limits):
        self.interp = Interpreter(prelude=False, **limits)
        self.session = self.interp.session

    def submit(self, source, **kwargs):
        return self.interp.submit(source, **kwargs)

    def submit_fn(self):
        return self.interp.submit


class _HostFront:
    name = "host"

    def __init__(self, **limits):
        self.host = Host(**limits)
        self.host.session(name="s", prelude=False)

    def submit(self, source, **kwargs):
        return self.host.submit("s", source, **kwargs)

    def drive(self, handle):
        while not handle.done():
            self.host.tick()

    def submit_fn(self):
        return self.host.submit

    def close(self):
        pass


class _ClusterFront:
    name = "cluster"

    def __init__(self, **limits):
        self.cluster = Cluster(
            workers=0, session_defaults={"prelude": False}, **limits
        )

    def submit(self, source, **kwargs):
        return self.cluster.submit_async("s", source, **kwargs)

    def drive(self, handle):
        handle.wait(30.0)

    def submit_fn(self):
        return self.cluster.submit_async

    def close(self):
        self.cluster.close()


FRONTS = [_SessionFront, _InterpreterFront, _HostFront, _ClusterFront]


@pytest.fixture(params=FRONTS, ids=[f.name for f in FRONTS])
def front(request):
    built = request.param()
    yield built
    built.close()


@pytest.fixture(params=FRONTS, ids=[f.name for f in FRONTS])
def tight_front(request):
    built = request.param(max_pending=1)
    yield built
    built.close()


# -- the keyword surface --------------------------------------------------


def test_submit_kwargs_identical_across_frontends():
    contract = {"max_steps", "deadline", "tenant"}
    for front_cls in FRONTS:
        built = front_cls()
        try:
            sig = inspect.signature(built.submit_fn())
            keyword_only = {
                name
                for name, param in sig.parameters.items()
                if param.kind is inspect.Parameter.KEYWORD_ONLY
            }
            assert contract <= keyword_only, front_cls.name
            for name in contract:
                assert sig.parameters[name].default is None, front_cls.name
        finally:
            built.close()


# -- the handle-state machine ---------------------------------------------


def test_handle_reaches_done_with_parity_surface(front):
    handle = front.submit("(+ 40 2)", tenant="acme")
    # Pre-drive the handle is live (cluster may already be running it).
    assert handle.state in (HandleState.PENDING, HandleState.RUNNING, HandleState.DONE)
    front.drive(handle)
    assert handle.state is HandleState.DONE
    assert handle.done()
    assert handle.exception() is None
    assert handle.tenant == "acme"
    assert handle.steps > 0


def test_handle_failure_is_terminal_failed(front):
    handle = front.submit("(+ 1 unbound-here)")
    front.drive(handle)
    assert handle.state is HandleState.FAILED
    assert handle.done()
    assert handle.exception() is not None


def test_cancel_while_queued_is_cancelled_with_session_cancelled(tight_front):
    blocker = tight_front.submit(LOOP, max_steps=50_000)
    # Saturated: queue another and cancel it before it can run.  With
    # max_pending=1 the second submit is refused, so cancel the
    # *blocker* instead — queued or running, every tier must land it
    # in CANCELLED with a SessionCancelled recorded.
    assert blocker.cancel() or blocker.done()
    if blocker.state is HandleState.CANCELLED:
        assert isinstance(blocker.exception(), SessionCancelled)
    tight_front.drive(blocker)
    assert blocker.done()


def test_cancel_of_terminal_handle_returns_false(front):
    handle = front.submit("(+ 1 1)")
    front.drive(handle)
    assert handle.cancel() is False


# -- refusal types --------------------------------------------------------


def test_saturation_raises_host_saturated(tight_front):
    tight_front.submit(LOOP, max_steps=500_000)
    with pytest.raises(HostSaturated):
        tight_front.submit("(+ 1 1)")


def test_queued_deadline_expiry_raises_deadline_exceeded(front):
    # One slow request occupies the tier, so the probe's deadline
    # clock (started at submit, per the contract) expires while it is
    # still queued — every tier fails it with DeadlineExceeded without
    # running a single step of it.
    front.submit(LOOP, max_steps=200_000)
    probe = front.submit("(+ 1 1)", deadline=1e-9)
    front.drive(probe)
    assert probe.state is HandleState.FAILED
    assert isinstance(probe.exception(), DeadlineExceeded)


def test_deadline_on_running_request_fails_the_handle(front):
    handle = front.submit(LOOP, deadline=0.02)
    front.drive(handle)
    assert handle.state is HandleState.FAILED
    exc = handle.exception()
    # Host tiers raise DeadlineExceeded directly; the cluster reports
    # the shard-side miss in-band, preserving the type name in
    # ClusterEvalError.error_type.
    assert "DeadlineExceeded" in type(exc).__name__ or (
        getattr(exc, "error_type", None) == "DeadlineExceeded"
    )
