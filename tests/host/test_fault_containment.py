"""Session-fatal fault containment: when a session dies (lifetime step
budget exhausted), every queued handle must reach a terminal state —
a PENDING handle left behind would block its waiter forever and
re-fault the session on every subsequent host tick."""

from __future__ import annotations

import pytest

from repro import Host, Session
from repro.errors import SessionCancelled, StepBudgetExceeded
from repro.host import HandleState

LOOP = "(define (spin n) (if (= n 0) 0 (spin (- n 1)))) (spin 100000)"


def make_faulting_session(**kwargs):
    """A session whose *lifetime* budget is far smaller than its first
    request, with more requests queued behind it."""
    s = Session(max_steps=200, **kwargs)
    doomed = s.submit(LOOP)
    queued = [s.submit("(+ 1 1)"), s.submit("(+ 2 2)")]
    return s, doomed, queued


def test_queued_handles_resolved_on_session_fatal_fault():
    s, doomed, queued = make_faulting_session()
    with pytest.raises(StepBudgetExceeded):
        while not s.idle:
            s.pump(512)
    assert doomed.state is HandleState.FAILED
    assert isinstance(doomed.exception(), StepBudgetExceeded)
    for handle in queued:
        assert handle.done(), "queued handle leaked in PENDING"
        assert handle.state is HandleState.CANCELLED
        exc = handle.exception()
        assert isinstance(exc, SessionCancelled)
        assert "session-fatal fault" in str(exc)
    # The queue is drained: the dead session reads as idle, so a
    # scheduler skips it instead of re-faulting it forever.
    assert s.idle
    assert s.queue_depth == 0


def test_fault_metrics_account_all_requests():
    s, doomed, queued = make_faulting_session()
    with pytest.raises(StepBudgetExceeded):
        while not s.idle:
            s.pump(512)
    # One failed active + two cancelled queued.
    assert s.metrics.evals_failed == 3
    assert s.metrics.cancellations == 2
    # Every request reached a terminal state, so every request is in
    # the latency histogram.
    assert s.metrics.latency_us.count == 3


def test_host_faults_once_not_every_tick():
    host = Host(quantum=512)
    s, doomed, queued = make_faulting_session()
    host.add_session(s)
    healthy = host.session(name="healthy")
    host.submit(healthy, "(+ 20 22)")
    for _ in range(10):
        host.tick()
    assert host.metrics.session_faults == 1, (
        "a dead session with a drained queue must not re-fault on "
        "every tick"
    )
    assert healthy.idle
    for handle in (doomed, *queued):
        assert handle.done()


def test_remove_session_resolves_queued_handles():
    """The other lifecycle edge: detaching a session from a host
    cancels everything still queued on it."""
    host = Host()
    s = host.session(name="leaver")
    h1 = host.submit(s, "(+ 1 1)")
    h2 = host.submit(s, "(+ 2 2)")
    host.remove_session(s)
    for handle in (h1, h2):
        assert handle.done()
        assert handle.state is HandleState.CANCELLED
