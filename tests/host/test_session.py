"""Session-level behaviour: incremental pumping, suspend/resume across
pumps, per-request budgets, error isolation, namespaced stats."""

from __future__ import annotations

import pytest

from repro import Engine, Session
from repro.errors import (
    DeadlineExceeded,
    HostSaturated,
    ReaderError,
    SchemeError,
    SessionCancelled,
    StepBudgetExceeded,
)
from repro.host import HandleState

ENGINES = ["dict", "resolved", "compiled"]

LOOP = "(define (loop n) (loop (+ n 1)))"
SUM_100 = "(let loop ([n 0] [acc 0]) (if (= n 100) acc (loop (+ n 1) (+ acc n))))"


# -- basics ---------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_eval_roundtrip(engine):
    session = Session(engine=engine)
    assert session.eval("(+ 1 2)") == 3


def test_engine_enum_accepted():
    assert Session(engine=Engine.DICT, prelude=False).engine == "dict"
    assert Session(engine="resolved", prelude=False).engine == "resolved"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        Session(engine="bytecode", prelude=False)


def test_run_returns_per_form_values(bare_session):
    values = bare_session.run("(+ 1 1) (+ 2 2) (+ 3 3)")
    assert values == [2, 4, 6]


def test_frontend_errors_raise_at_submit(bare_session):
    with pytest.raises(ReaderError):
        bare_session.submit("(+ 1")
    assert bare_session.idle  # nothing was queued


# -- incremental pumping --------------------------------------------------


@pytest.fixture
def bare_session() -> Session:
    return Session(prelude=False)


@pytest.mark.parametrize("engine", ENGINES)
def test_pump_suspends_and_resumes(engine):
    session = Session(engine=engine, prelude=False)
    handle = session.submit(SUM_100)
    pumps = 0
    while not handle.done():
        took = session.pump(25)
        assert took <= 25
        pumps += 1
    assert handle.result() == 4950
    assert pumps > 3  # genuinely incremental, not one shot
    assert handle.steps == session.metrics.steps_served


def test_pump_zero_budget_is_a_noop(bare_session):
    handle = bare_session.submit("(+ 1 2)")
    assert bare_session.pump(0) == 0
    assert handle.state is HandleState.PENDING


def test_pcall_tree_survives_suspension():
    # A capture-heavy program suspended mid-pcall must resume correctly:
    # the whole process tree (branches, join, controller root) is live
    # state between pumps.
    session = Session(quantum=4)
    session.load_paper_example("sum-of-products")
    handle = session.submit("(sum-of-products '(1 2 3) '(4 0 6))")
    while not handle.done():
        session.pump(7)  # deliberately tiny, misaligned with quantum
    assert handle.result() == 6


def test_fifo_order_across_handles(bare_session):
    first = bare_session.submit("(define x 10)")
    second = bare_session.submit("(+ x 1)")
    while not second.done():
        bare_session.pump(64)
    assert first.done()
    assert second.result() == 11


def test_handle_result_drives_session(bare_session):
    handle = bare_session.submit("(* 6 7)")
    assert handle.result() == 42  # no explicit pump needed
    assert handle.state is HandleState.DONE


# -- per-request budgets --------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_step_budget_enforced_exactly(engine):
    session = Session(engine=engine)
    session.run(LOOP)
    handle = session.submit("(loop 0)", max_steps=500)
    while not handle.done():
        session.pump(64)
    assert handle.state is HandleState.FAILED
    assert isinstance(handle.exception(), StepBudgetExceeded)
    assert handle.steps == 500  # exact, not approximate
    assert session.metrics.deadline_misses == 1


def test_step_budget_smaller_than_pump(bare_session):
    handle = bare_session.submit(SUM_100, max_steps=10)
    bare_session.pump(1 << 20)
    assert isinstance(handle.exception(), StepBudgetExceeded)
    assert handle.steps == 10


def test_wall_deadline_zero_runs_no_steps(bare_session):
    handle = bare_session.submit(SUM_100, deadline=0.0)
    bare_session.pump(1 << 20)
    assert isinstance(handle.exception(), DeadlineExceeded)
    assert handle.steps == 0  # refused before the first quantum


def test_wall_deadline_mid_run():
    session = Session()
    session.run(LOOP)
    handle = session.submit("(loop 0)", deadline=0.05)
    while not handle.done():
        session.pump(4096)
    assert isinstance(handle.exception(), DeadlineExceeded)
    assert handle.exception().steps == handle.steps


def test_budget_miss_does_not_poison_session(bare_session):
    doomed = bare_session.submit(SUM_100, max_steps=5)
    after = bare_session.submit("(+ 40 2)")
    while not after.done():
        bare_session.pump(64)
    assert isinstance(doomed.exception(), StepBudgetExceeded)
    assert after.result() == 42


def test_lifetime_budget_still_raises_to_driver():
    session = Session(max_steps=200, prelude=False)
    handle = session.submit(SUM_100)
    with pytest.raises(StepBudgetExceeded):
        session.drive(handle)
    assert handle.state is HandleState.FAILED
    assert session.machine.steps_total == 200


# -- errors and cancellation ----------------------------------------------


def test_scheme_error_fails_only_its_handle(bare_session):
    bad = bare_session.submit("(error \"boom\")")
    good = bare_session.submit("(+ 1 2)")
    while not good.done():
        bare_session.pump(64)
    assert isinstance(bad.exception(), SchemeError)
    assert good.result() == 3


def test_cancel_queued_handle(bare_session):
    blocker = bare_session.submit(SUM_100)
    queued = bare_session.submit("(+ 1 2)")
    assert queued.cancel() is True
    assert queued.state is HandleState.CANCELLED
    assert isinstance(queued.exception(), SessionCancelled)
    assert blocker.result() == 4950  # sibling unaffected


def test_cancel_in_flight_handle(bare_session):
    handle = bare_session.submit(SUM_100)
    bare_session.pump(20)  # started, suspended mid-run
    assert handle.state is HandleState.RUNNING
    assert handle.cancel() is True
    assert handle.state is HandleState.CANCELLED
    with pytest.raises(SessionCancelled):
        handle.result()
    assert bare_session.eval("(* 2 3)") == 6  # machine left clean


def test_cancel_terminal_handle_returns_false(bare_session):
    handle = bare_session.submit("(+ 1 2)")
    assert handle.result() == 3
    assert handle.cancel() is False


def test_cancel_all(bare_session):
    handles = [bare_session.submit("(+ 1 2)") for _ in range(3)]
    bare_session.pump(2)  # first handle now in flight
    assert bare_session.cancel_all() == 3
    assert bare_session.idle
    assert all(h.state is HandleState.CANCELLED for h in handles)


def test_cancellation_during_in_flight_capture():
    # Cancel while the tree is suspended mid-pcall with a controller
    # captured: discard must be at the root, leaving the session able
    # to run the same program again correctly.
    session = Session(quantum=4)
    session.load_paper_example("sum-of-products")
    handle = session.submit("(sum-of-products '(1 2 3) '(4 5 6))")
    session.pump(30)  # inside the pcall, captures have happened
    assert handle.state is HandleState.RUNNING
    handle.cancel()
    assert handle.state is HandleState.CANCELLED
    assert session.eval("(sum-of-products '(1 2 3) '(4 0 6))") == 6


# -- backpressure ---------------------------------------------------------


def test_bounded_queue_saturates():
    session = Session(prelude=False, max_pending=2)
    session.submit("(+ 1 1)")
    session.submit("(+ 2 2)")
    with pytest.raises(HostSaturated):
        session.submit("(+ 3 3)")
    assert session.metrics.saturations == 1
    # Draining frees capacity.
    session.pump(1 << 20)
    session.submit("(+ 4 4)")


# -- stats ----------------------------------------------------------------


def test_stats_namespaced_only():
    # 1.4.0: the flat aliases are gone; every compiler/VM counter is
    # exported once, under its namespace.
    session = Session(engine="compiled", profile=True)
    session.eval("(+ 1 2)")
    stats = session.stats
    for flat, namespaced in [
        ("resolver_locals", "resolver.locals"),
        ("compile_nodes", "compile.nodes"),
        ("vm_quanta", "vm.quanta"),
    ]:
        assert namespaced in stats
        assert flat not in stats
    assert stats["session.submits"] == session.metrics.submits


def test_dict_engine_has_no_resolver_stats():
    session = Session(engine="dict", prelude=False)
    session.eval("(+ 1 2)")
    assert "resolver.locals" not in session.stats


def test_sessions_are_isolated():
    a = Session(prelude=False)
    b = Session(prelude=False)
    a.run("(define shared 1)")
    b.run("(define shared 2)")
    assert a.eval("shared") == 1
    assert b.eval("shared") == 2
