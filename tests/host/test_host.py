"""Host-level behaviour: fair multiplexing of many sessions, deadline
enforcement mid-``pcall``, backpressure, and the engine × policy
differential matrix for budget enforcement."""

from __future__ import annotations

import pytest

from repro import Host, Session
from repro.errors import DeadlineExceeded, HostSaturated, StepBudgetExceeded
from repro.host import HandleState, HostPolicy

ENGINES = ["dict", "resolved", "compiled"]
HOST_POLICIES = ["round-robin", "deficit"]

LOOP = "(define (loop n) (loop (+ n 1)))"


def _spin(n: int) -> str:
    return f"(let loop ([i 0]) (if (= i {n}) i (loop (+ i 1))))"


# -- membership -----------------------------------------------------------


def test_session_lookup_and_iteration():
    host = Host()
    a = host.session("a", prelude=False)
    b = host.session("b", prelude=False)
    assert host["a"] is a
    assert list(host) == [a, b]
    assert len(host) == 2


def test_duplicate_names_rejected():
    host = Host()
    host.session("a", prelude=False)
    with pytest.raises(ValueError):
        host.add_session(Session(name="a", prelude=False))


def test_foreign_session_rejected():
    host = Host()
    stray = Session(prelude=False)
    with pytest.raises(ValueError):
        host.submit(stray, "(+ 1 2)")


def test_remove_session_cancels_work():
    host = Host()
    sess = host.session("a", prelude=False)
    handle = host.submit(sess, _spin(10_000))
    host.tick()
    host.remove_session("a")
    assert handle.state is HandleState.CANCELLED
    assert len(host) == 0


# -- fairness -------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("policy", HOST_POLICIES)
def test_eight_sessions_complete_with_correct_results(engine, policy):
    """The headline acceptance check: ≥8 concurrent sessions running
    capture-heavy paper programs to completion, each with the correct
    per-session result, under every engine and host policy."""
    host = Host(policy=policy, quantum=200)
    handles = {}
    expected = {}
    for k in range(8):
        sess = host.session(f"s{k}", engine=engine, quantum=4)
        if k % 2 == 0:
            # sum-of-products = product(ls1) + product(ls2)
            sess.load_paper_example("sum-of-products")
            handles[f"s{k}"] = host.submit(sess, f"(sum-of-products '(1 2 3) '(4 {k} 6))")
            expected[f"s{k}"] = 6 + 24 * k
        else:
            sess.load_paper_example("parallel-or")
            handles[f"s{k}"] = host.submit(sess, f"(parallel-or #f {k})")
            expected[f"s{k}"] = k
    ticks = host.run_until_idle(max_ticks=10_000)
    assert ticks < 10_000, "host did not drain"
    for name, want in expected.items():
        assert handles[name].result() == want, name
        assert host[name].metrics.evals_failed == 0, name


@pytest.mark.parametrize("engine", ENGINES)
def test_results_are_per_session_correct(engine):
    host = Host(quantum=150)
    handles = {}
    for k in range(8):
        sess = host.session(f"s{k}", engine=engine, quantum=4)
        sess.load_paper_example("sum-of-products")
        handles[k] = host.submit(sess, f"(sum-of-products '(1 2 3) '(4 {k} 6))")
    host.run_until_idle(max_ticks=10_000)
    for k, handle in handles.items():
        assert handle.result() == 6 + 24 * k, f"session s{k}"


def test_round_robin_serves_identical_workloads_in_step():
    """Strict per-tick fairness: identical workloads on identical
    sessions finish in the same tick."""
    host = Host(policy="round-robin", quantum=100)
    handles = []
    finish_tick = {}
    for k in range(8):
        sess = host.session(f"s{k}", prelude=False)
        handles.append((k, host.submit(sess, _spin(2000))))
    tick = 0
    while not host.idle:
        host.tick()
        tick += 1
        for k, handle in handles:
            if handle.done() and k not in finish_tick:
                finish_tick[k] = tick
    assert len(set(finish_tick.values())) == 1


def test_deficit_lets_backlogged_session_catch_up():
    """A session that sat idle accrues no credit, but one with standing
    backlog gets its banked share: total service converges."""
    host = Host(policy="deficit", quantum=100)
    busy = host.session("busy", prelude=False)
    late = host.session("late", prelude=False)
    h_busy = host.submit(busy, _spin(3000))
    for _ in range(4):
        host.tick()
    h_late = host.submit(late, _spin(3000))
    host.run_until_idle(max_ticks=10_000)
    assert h_busy.result() == 3000
    assert h_late.result() == 3000
    # The late session was never starved below the busy one's rate:
    assert late.metrics.steps_served > 0


def test_sessions_survive_sibling_failure():
    host = Host(quantum=100)
    good = host.session("good", prelude=False)
    bad = host.session("bad", prelude=False)
    h_good = host.submit(good, _spin(2000))
    h_bad = host.submit(bad, "(error \"tenant bug\")")
    host.run_until_idle(max_ticks=10_000)
    assert h_bad.state is HandleState.FAILED
    assert h_good.result() == 2000


def test_lifetime_exhaustion_is_contained_as_session_fault():
    host = Host(quantum=100)
    doomed = host.session("doomed", prelude=False, max_steps=150)
    good = host.session("good", prelude=False)
    h_doomed = host.submit(doomed, _spin(5000))
    h_good = host.submit(good, _spin(2000))
    host.run_until_idle(max_ticks=10_000)
    assert isinstance(h_doomed.exception(), StepBudgetExceeded)
    assert host.metrics.session_faults >= 1
    assert h_good.result() == 2000


# -- deadlines under the host --------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_deadline_expiry_mid_pcall(engine):
    """A wall-clock deadline expiring while the tree is suspended
    mid-pcall kills only that request; the session and its siblings
    keep serving correct results."""
    host = Host(quantum=50)
    victim = host.session("victim", engine=engine, quantum=4)
    victim.run(LOOP)
    victim.load_paper_example("sum-of-products")
    sibling = host.session("sibling", engine=engine, quantum=4)
    sibling.load_paper_example("sum-of-products")
    # An unbounded loop *inside* a pcall branch: the deadline fires
    # while the other branch sits suspended in the fork.
    doomed = host.submit(victim, "(pcall + (loop 0) 1)", deadline=0.03)
    fine = host.submit(sibling, "(sum-of-products '(1 2 3) '(4 0 6))")
    host.run_until_idle(max_ticks=1_000_000)
    assert isinstance(doomed.exception(), DeadlineExceeded)
    assert doomed.steps > 0  # it genuinely ran before expiring
    assert fine.result() == 6
    # The victim session itself is not corrupted:
    assert victim.eval("(sum-of-products '(1 2 3) '(4 0 6))") == 6


# -- backpressure ---------------------------------------------------------


def test_host_wide_saturation():
    host = Host(max_pending=2)
    a = host.session("a", prelude=False)
    b = host.session("b", prelude=False)
    host.submit(a, "(+ 1 1)")
    host.submit(b, "(+ 2 2)")
    with pytest.raises(HostSaturated):
        host.submit(a, "(+ 3 3)")
    assert host.metrics.saturations == 1
    host.run_until_idle(max_ticks=1000)
    host.submit(a, "(+ 3 3)")  # capacity restored after draining


def test_per_session_saturation_counted_by_host():
    host = Host()
    a = host.session("a", prelude=False, max_pending=1)
    host.submit(a, "(+ 1 1)")
    with pytest.raises(HostSaturated):
        host.submit(a, "(+ 2 2)")
    assert host.metrics.saturations == 1
    assert a.metrics.saturations == 1


# -- the differential matrix ----------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("task_policy", ["round-robin", "serial"])
@pytest.mark.parametrize("quantum", [1, 4, 16])
def test_step_budget_enforcement_is_engine_invariant(engine, task_policy, quantum):
    """Zero divergence gate: a per-request step budget is enforced at
    *exactly* the configured step count — same count, same exception —
    whatever the engine, task policy or machine quantum.  This is the
    property the CI host-smoke step asserts across the full matrix."""
    session = Session(engine=engine, policy=task_policy, quantum=quantum)
    session.run(LOOP)
    handle = session.submit("(loop 0)", max_steps=333)
    while not handle.done():
        session.pump(100)
    assert isinstance(handle.exception(), StepBudgetExceeded)
    assert handle.steps == 333


@pytest.mark.parametrize("engine", ENGINES)
def test_doomed_session_does_not_skew_siblings(engine):
    """One session burning its budget in a hot loop must not change
    what any other session computes (engine × policy acceptance)."""
    for policy in HOST_POLICIES:
        host = Host(policy=policy, quantum=100)
        doomed_sess = host.session(f"doomed-{policy}", engine=engine, prelude=False)
        doomed_sess.run(LOOP)
        doomed = host.submit(doomed_sess, "(loop 0)", max_steps=5_000)
        others = [
            (host.submit(host.session(f"w{k}-{policy}", engine=engine, prelude=False),
                         _spin(1000)), 1000)
            for k in range(3)
        ]
        host.run_until_idle(max_ticks=10_000)
        assert isinstance(doomed.exception(), StepBudgetExceeded)
        assert doomed.steps == 5_000
        for handle, want in others:
            assert handle.result() == want


def test_host_stats_rollup():
    host = Host(quantum=100)
    a = host.session("a", prelude=False)
    host.submit(a, "(+ 1 2)")
    host.run_until_idle(max_ticks=100)
    stats = host.stats
    assert stats["host.sessions"] == 1
    assert stats["host.submits"] == 1
    assert stats["host.sessions.evals_completed"] == 1
    assert stats["host.steps_served"] == a.metrics.steps_served


# -- fault accounting and observability -----------------------------------


def test_faulted_tick_keeps_partial_steps_visible():
    """A session fault mid-pump used to zero that tick's spend, losing
    the pre-fault steps from host.steps_served.  The pump accounts every
    executed step before the fault propagates, so the host can recover
    the partial spend — conservation must hold."""
    host = Host(quantum=512)
    doomed = host.session("doomed", prelude=False, max_steps=150)
    good = host.session("good", prelude=False)
    h_doomed = host.submit(doomed, _spin(5000))
    h_good = host.submit(good, _spin(200))
    host.run_until_idle(max_ticks=50)
    assert host.metrics.session_faults == 1
    assert isinstance(h_doomed.exception(), StepBudgetExceeded)
    assert h_good.result() == 200
    # Every step any session executed is in the host's ledger.
    assert doomed.metrics.steps_served == 150  # ran right up to the cap
    assert host.metrics.steps_served == sum(
        s.metrics.steps_served for s in host
    )


def test_faulted_tick_decrements_deficit_bank():
    """Under the deficit policy a faulted pump must still consume the
    credit it actually spent, not bank the whole budget as if the tick
    were free."""
    host = Host(policy="deficit", quantum=100)
    doomed = host.session("doomed", prelude=False, max_steps=150)
    host.submit(doomed, _spin(5000))
    host.tick()  # spends the full 100-step credit, no fault yet
    assert host._deficit["doomed"] == 0
    host.tick()  # faults after the remaining 50 lifetime steps
    assert host.metrics.session_faults == 1
    assert doomed.metrics.steps_served == 150
    assert host.metrics.steps_served == 150
    # credit 100, spent 50 before the fault: 50 banked, not 100.
    assert host._deficit["doomed"] == 50


def test_run_until_idle_terminates_on_mid_request_fault():
    """Regression: run_until_idle (no max_ticks safety net) must not
    spin forever when a session faults mid-request."""
    host = Host(quantum=64)
    doomed = host.session("doomed", prelude=False, max_steps=150)
    good = host.session("good", prelude=False)
    h_doomed = host.submit(doomed, _spin(5000))
    h_good = host.submit(good, _spin(500))
    ticks = host.run_until_idle()
    assert ticks > 0
    assert host.idle
    assert h_doomed.state is HandleState.FAILED
    assert isinstance(h_doomed.exception(), StepBudgetExceeded)
    assert h_good.result() == 500


def test_request_histograms_observe_every_terminal_state():
    host = Host(quantum=256)
    sess = host.session("a", prelude=False)
    ok = host.submit(sess, _spin(100))
    slow = host.submit(sess, _spin(10_000), max_steps=50)  # budget miss
    queued = host.submit(sess, _spin(100))
    queued.cancel()
    host.run_until_idle(max_ticks=100)
    assert ok.state is HandleState.DONE
    assert slow.state is HandleState.FAILED
    assert queued.state is HandleState.CANCELLED
    # done + failed + cancelled all land in the distributions.
    assert sess.metrics.latency_us.count == 3
    assert sess.metrics.steps_hist.count == 3
    assert sess.metrics.steps_hist.max >= 100


def test_host_histogram_rollup():
    host = Host(quantum=128)
    sess = host.session("a", prelude=False)
    host.submit(sess, _spin(300))
    host.run_until_idle(max_ticks=50)
    assert host.metrics.tick_us.count == host.metrics.ticks
    assert host.metrics.tick_steps.count == host.metrics.ticks
    hists = host.histograms()
    assert "host.tick_us" in hists
    assert "host.steps_per_tick" in hists
    assert "session.a.latency_us" in hists
    assert "session.a.steps_per_request" in hists
    assert hists["session.a.latency_us"]["count"] == 1
    # Stats stay pure-int (the host rollup sums them); distributions
    # live only in histograms().
    assert all(isinstance(v, int) for v in host.stats.values())
    assert all(isinstance(v, int) for v in sess.stats.values())
