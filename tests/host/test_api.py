"""The Interpreter façade: canonical constructor surface, the
``resolve=`` removal, per-call budgets, and the api.py doctests."""

from __future__ import annotations

import doctest
import warnings

import pytest

import repro.api
from repro import Engine, Interpreter, SchedulerPolicy
from repro.errors import DeadlineExceeded, StepBudgetExceeded
from repro.host import Session

LOOP = "(define (loop n) (loop (+ n 1)))"


# -- constructor surface --------------------------------------------------


def test_engine_accepts_enum_and_string():
    assert Interpreter(engine=Engine.DICT, prelude=False).engine == "dict"
    assert Interpreter(engine="dict", prelude=False).engine == "dict"
    assert Interpreter(engine=Engine.COMPILED, prelude=False).engine == "compiled"


def test_policy_accepts_enum_and_string():
    a = Interpreter(policy=SchedulerPolicy.SERIAL, prelude=False)
    b = Interpreter(policy="serial", prelude=False)
    assert a.machine.policy is SchedulerPolicy.SERIAL
    assert b.machine.policy is SchedulerPolicy.SERIAL


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        Interpreter(engine="jit", prelude=False)


def test_default_engine_unchanged():
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the default path must not warn
        assert Interpreter(prelude=False).engine == "compiled"


def test_facade_is_a_session():
    interp = Interpreter(prelude=False)
    assert isinstance(interp.session, Session)
    assert interp.machine is interp.session.machine
    assert interp.globals is interp.session.globals


# -- the resolve= removal (deprecated 1.1, removed 1.4) -------------------


def test_resolve_kwarg_removed():
    # The sentinel path is gone: resolve= is an unknown keyword now,
    # not a warning.  engine="dict" is the only spelling.
    with pytest.raises(TypeError, match="resolve"):
        Interpreter(resolve=False, prelude=False)
    with pytest.raises(TypeError, match="resolve"):
        Interpreter(resolve=True, prelude=False)


def test_resolve_property_still_reads():
    # The derived read-only property survives (it reports whether the
    # resolver pass runs, i.e. any engine but dict).
    assert Interpreter(engine="dict", prelude=False).resolve is False
    assert Interpreter(engine="compiled", prelude=False).resolve is True


# -- per-call budgets -----------------------------------------------------


def test_eval_max_steps_enforced_exactly():
    interp = Interpreter()
    interp.definitions(LOOP)
    with pytest.raises(StepBudgetExceeded) as info:
        interp.eval("(loop 0)", max_steps=750)
    assert info.value.steps == 750
    # The interpreter is not poisoned by the miss:
    assert interp.eval("(+ 40 2)") == 42


def test_eval_deadline_enforced():
    interp = Interpreter()
    interp.definitions(LOOP)
    with pytest.raises(DeadlineExceeded):
        interp.eval("(loop 0)", deadline=0.05)
    assert interp.eval("(+ 40 2)") == 42


def test_per_call_budget_tightens_never_loosens():
    interp = Interpreter(max_steps=100, prelude=False)
    interp.definitions(LOOP)
    # Asking for more than the lifetime budget still stops at the
    # lifetime bound.
    with pytest.raises(StepBudgetExceeded):
        interp.eval("(loop 0)", max_steps=10_000)
    assert interp.machine.steps_total <= 100


def test_lifetime_budget_unchanged():
    interp = Interpreter(max_steps=1000)
    interp.definitions(LOOP)
    with pytest.raises(StepBudgetExceeded):
        interp.eval("(loop 0)")


def test_run_accepts_budgets_too():
    interp = Interpreter(prelude=False)
    assert interp.run("(+ 1 1) (+ 2 2)", max_steps=10_000) == [2, 4]


def test_submit_returns_handle():
    interp = Interpreter(prelude=False)
    handle = interp.submit("(* 6 7)")
    assert not handle.done()
    assert handle.result() == 42


# -- stats compatibility --------------------------------------------------


def test_stats_flat_aliases_gone():
    # 1.4.0: the namespaced keys are the only spelling; the flat
    # aliases that shadowed them since 1.1 are removed.
    interp = Interpreter(engine="compiled", profile=True)
    interp.eval("(+ 1 2)")
    stats = interp.stats
    for flat, namespaced in [
        ("resolver_locals", "resolver.locals"),
        ("compile_nodes", "compile.nodes"),
        ("vm_quanta", "vm.quanta"),
    ]:
        assert namespaced in stats
        assert flat not in stats


# -- doctests -------------------------------------------------------------


def test_api_doctests():
    result = doctest.testmod(repro.api)
    assert result.attempted > 0
    assert result.failed == 0
