"""Parser behaviour: data construction and error reporting."""

import pytest

from repro.datum import (
    NIL,
    MVector,
    Pair,
    from_pylist,
    intern,
    is_equal,
    scheme_repr,
    to_pylist,
)
from repro.errors import ReaderError
from repro.reader import read_all, read_one


def test_read_atom():
    assert read_one("42") == 42
    assert read_one("abc") is intern("abc")


def test_read_list():
    assert is_equal(read_one("(1 2 3)"), from_pylist([1, 2, 3]))


def test_read_empty_list():
    assert read_one("()") is NIL


def test_read_nested():
    value = read_one("(a (b c) d)")
    assert scheme_repr(value) == "(a (b c) d)"


def test_read_dotted():
    value = read_one("(1 . 2)")
    assert value.car == 1 and value.cdr == 2


def test_read_dotted_multi():
    value = read_one("(1 2 . 3)")
    assert scheme_repr(value) == "(1 2 . 3)"


def test_brackets_interchangeable():
    assert scheme_repr(read_one("[let ([x 1]) x]")) == "(let ((x 1)) x)"


def test_quote_expansion():
    assert scheme_repr(read_one("'x")) == "'x"
    assert to_pylist(read_one("'x"))[0] is intern("quote")


def test_quasiquote_expansion():
    value = read_one("`(a ,b ,@c)")
    assert scheme_repr(value) == "`(a ,b ,@c)"


def test_vector():
    value = read_one("#(1 2 3)")
    assert isinstance(value, MVector)
    assert value.items == [1, 2, 3]


def test_nested_vector():
    value = read_one("#(1 #(2))")
    assert isinstance(value.items[1], MVector)


def test_datum_comment():
    assert read_all("1 #;2 3") == [1, 3]


def test_datum_comment_inside_list():
    assert scheme_repr(read_one("(1 #;(skip this) 2)")) == "(1 2)"


def test_datum_comment_inside_vector():
    assert read_one("#(1 #;2 3)").items == [1, 3]


def test_read_all_multiple():
    assert read_all("1 2 3") == [1, 2, 3]


def test_read_all_empty():
    assert read_all("  ; just a comment\n") == []


def test_read_one_rejects_multiple():
    with pytest.raises(ReaderError):
        read_one("1 2")


def test_read_one_rejects_empty():
    with pytest.raises(ReaderError):
        read_one("")


def test_unterminated_list():
    with pytest.raises(ReaderError):
        read_all("(1 2")


def test_unterminated_vector():
    with pytest.raises(ReaderError):
        read_all("#(1 2")


def test_stray_close():
    with pytest.raises(ReaderError):
        read_all(")")


def test_dot_misuse():
    with pytest.raises(ReaderError):
        read_all("(. 1)")
    with pytest.raises(ReaderError):
        read_all("(1 . 2 3)")
    with pytest.raises(ReaderError):
        read_all("#(1 . 2)")


def test_quote_with_no_datum():
    with pytest.raises(ReaderError):
        read_all("'")


def test_deeply_nested_lists():
    depth = 2000
    text = "(" * depth + "x" + ")" * depth
    value = read_one(text)
    for _ in range(depth):
        assert isinstance(value, Pair)
        value = value.car
    assert value is intern("x")
