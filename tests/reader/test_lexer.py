"""Tokenizer behaviour."""

from fractions import Fraction

import pytest

from repro.datum import Char
from repro.errors import ReaderError
from repro.reader.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


def test_parens_and_brackets():
    assert kinds("()[]") == [
        TokenKind.LPAREN,
        TokenKind.RPAREN,
        TokenKind.LPAREN,
        TokenKind.RPAREN,
    ]


def test_integers():
    assert values("1 -2 +3 007") == [1, -2, 3, 7]


def test_rationals():
    assert values("1/2 -3/4 4/2") == [Fraction(1, 2), Fraction(-3, 4), 2]


def test_floats():
    assert values("1.5 -0.25 1e3 2.5e-1") == [1.5, -0.25, 1000.0, 0.25]


def test_symbols_that_look_numeric():
    vals = values("+ - ... 1+ a/b")
    assert vals == ["+", "-", "...", "1+", "a/b"]
    assert kinds("+")[0] is TokenKind.SYMBOL


def test_booleans():
    assert values("#t #f") == [True, False]


def test_chars():
    assert values(r"#\a #\space #\newline #\( ") == [
        Char("a"),
        Char(" "),
        Char("\n"),
        Char("("),
    ]


def test_char_hex():
    assert values(r"#\x41") == [Char("A")]


def test_unknown_char_name():
    with pytest.raises(ReaderError):
        tokenize(r"#\bogusname")


def test_strings():
    assert values('"hi"') == ["hi"]
    assert values(r'"a\nb\t\"q\""') == ['a\nb\t"q"']


def test_string_hex_escape():
    assert values(r'"\x41;"') == ["A"]


def test_unterminated_string():
    with pytest.raises(ReaderError):
        tokenize('"oops')


def test_quote_prefixes():
    assert kinds("'x `y ,z ,@w") == [
        TokenKind.QUOTE,
        TokenKind.SYMBOL,
        TokenKind.QUASIQUOTE,
        TokenKind.SYMBOL,
        TokenKind.UNQUOTE,
        TokenKind.SYMBOL,
        TokenKind.UNQUOTE_SPLICING,
        TokenKind.SYMBOL,
    ]


def test_line_comment():
    assert values("1 ; two three\n4") == [1, 4]


def test_block_comment_nested():
    assert values("1 #| a #| b |# c |# 2") == [1, 2]


def test_unterminated_block_comment():
    with pytest.raises(ReaderError):
        tokenize("#| nope")


def test_datum_comment_token():
    assert TokenKind.DATUM_COMMENT in [t.kind for t in tokenize("#;(x) 1")]


def test_vector_open():
    assert kinds("#(1)")[0] is TokenKind.VECTOR_OPEN


def test_dot_token():
    assert TokenKind.DOT in kinds("(a . b)")


def test_unknown_hash_syntax():
    with pytest.raises(ReaderError):
        tokenize("#q")


def test_line_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_boolean_requires_delimiter():
    # #true is not a boolean token in this dialect; it errors as
    # unknown # syntax rather than silently lexing #t + rue.
    with pytest.raises(ReaderError):
        tokenize("#true")


def test_infinities_and_nan_read_as_numbers():
    inf, ninf, nan = values("+inf.0 -inf.0 +nan.0")
    assert inf == float("inf")
    assert ninf == float("-inf")
    assert nan != nan  # NaN


def test_special_float_print_read_roundtrip():
    from repro.datum import scheme_repr
    from repro.reader import read_one

    for value in (float("inf"), float("-inf")):
        assert read_one(scheme_repr(value)) == value
    nan_back = read_one(scheme_repr(float("nan")))
    assert nan_back != nan_back
