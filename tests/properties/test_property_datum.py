"""Property tests on the datum layer: print→read round trips and
equality laws."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datum import (
    Char,
    MVector,
    from_pylist,
    intern,
    is_equal,
    is_eqv,
    scheme_repr,
)
from repro.reader import read_one

# -- strategies -------------------------------------------------------------

symbol_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-!?*<>=+/", min_size=1, max_size=10
).filter(
    lambda s: not s[0].isdigit()
    and s not in (".", "...")
    and not s.startswith(("+", "-"))  # avoid number-like spellings
)

atoms = st.one_of(
    st.integers(min_value=-(10**12), max_value=10**12),
    st.booleans(),
    st.builds(
        Fraction,
        st.integers(min_value=-(10**6), max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    ).filter(lambda f: f.denominator != 1),
    st.text(alphabet=st.characters(codec="ascii", exclude_characters="\x00"), max_size=12),
    symbol_names.map(intern),
    st.sampled_from("abcxyz \n\t().").map(Char),
)


def scheme_data(max_leaves=20):
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, max_size=4).map(from_pylist),
            st.lists(children, max_size=4).map(MVector),
        ),
        max_leaves=max_leaves,
    )


# -- properties --------------------------------------------------------------


@given(scheme_data())
@settings(max_examples=200)
def test_print_read_roundtrip(value):
    assert is_equal(read_one(scheme_repr(value)), value)


@given(scheme_data(max_leaves=8))
def test_equal_reflexive(value):
    assert is_equal(value, value)


@given(scheme_data(max_leaves=8), scheme_data(max_leaves=8))
def test_equal_symmetric(a, b):
    assert is_equal(a, b) == is_equal(b, a)


@given(atoms, atoms)
def test_eqv_implies_equal(a, b):
    if is_eqv(a, b):
        assert is_equal(a, b)


@given(st.lists(atoms, max_size=10))
def test_pylist_roundtrip(items):
    from repro.datum import to_pylist

    back = to_pylist(from_pylist(items))
    assert len(back) == len(items)
    assert all(is_equal(x, y) for x, y in zip(back, items))


@given(st.lists(atoms, max_size=8), st.lists(atoms, max_size=8))
def test_append_length(xs, ys):
    from repro.datum import list_length, scheme_append

    result = scheme_append(from_pylist(xs), from_pylist(ys))
    assert list_length(result) == len(xs) + len(ys)


@given(st.lists(atoms, max_size=10))
def test_reverse_involution(items):
    from repro.datum import scheme_reverse

    ls = from_pylist(items)
    assert is_equal(scheme_reverse(scheme_reverse(ls)), ls)
