"""Property tests on the machine: schedule independence and control-law
invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Interpreter


@given(
    st.lists(st.integers(-5, 5), min_size=1, max_size=6),
    st.lists(st.integers(-5, 5), min_size=1, max_size=6),
    st.integers(0, 2**31 - 1),
    st.integers(1, 8),
)
@settings(max_examples=30, deadline=None)
def test_sum_of_products_schedule_independent(xs, ys, seed, quantum):
    """E4's workload: the answer must not depend on scheduling policy,
    seed or quantum — interleaving is semantically invisible for
    race-free programs."""
    expected = _product(xs) + _product(ys)
    interp = Interpreter(policy="random", seed=seed, quantum=quantum)
    interp.load_paper_example("sum-of-products")
    got = interp.eval(f"(sum-of-products '{_fmt(xs)} '{_fmt(ys)})")
    assert got == expected


def _product(xs):
    out = 1
    for x in xs:
        if x == 0:
            return 0
        out *= x
    return out


def _fmt(xs):
    return "(" + " ".join(str(x) for x in xs) + ")"


@given(st.lists(st.integers(0, 30), min_size=1, max_size=12), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_search_all_complete_under_any_schedule(values, seed):
    """search-all must return every match exactly once per occurrence,
    under any random schedule."""
    unique = sorted(set(values))
    interp = Interpreter(policy="random", seed=seed)
    interp.load_paper_example("search-all")
    interp.run(f"(define t (list->tree '{_fmt(values)}))")
    found = interp.eval_to_string("(search-all t even?)")
    got = sorted(int(x) for x in found.strip("()").split()) if found != "()" else []
    expected = sorted(v for v in values if v % 2 == 0)
    assert got == expected


@given(st.integers(-100, 100), st.integers(0, 50))
@settings(max_examples=50, deadline=None)
def test_process_continuation_multishot_consistent(value, extra):
    """(k v) for k = <label: (+ extra [])> equals extra + v on every
    invocation, however many times k is reused."""
    interp = Interpreter()
    interp.run(f"(define k (spawn (lambda (c) (+ {extra} (c (lambda (kk) kk))))))")
    for _ in range(3):
        assert interp.eval(f"(k {value})") == extra + value


@given(st.integers(-50, 50))
@settings(max_examples=25, deadline=None)
def test_spawn_of_pure_value_is_identity(n):
    interp = Interpreter(prelude=False)
    assert interp.eval(f"(spawn (lambda (c) {n}))") == n


@given(st.integers(-50, 50), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_abort_discards_exactly_the_process(n, depth):
    """Wrapping the spawn in `depth` additions of 1: the controller
    abort discards only what is inside the process, so the outer
    additions always apply."""
    inner = f"(spawn (lambda (c) (* 1000 (c (lambda (k) {n})))))"
    source = inner
    for _ in range(depth):
        source = f"(+ 1 {source})"
    interp = Interpreter(prelude=False)
    assert interp.eval(source) == n + depth


@given(st.lists(st.integers(1, 9), min_size=2, max_size=5), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_pcall_equals_sequential_call(args, seed):
    interp = Interpreter(policy="random", seed=seed, prelude=False)
    spelled = " ".join(str(a) for a in args)
    assert interp.eval(f"(pcall + {spelled})") == interp.eval(f"(+ {spelled})")


@given(st.integers(1, 6), st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_futures_fanout_schedule_independent(nfutures, seed):
    """N futures summed via touch: same answer under any schedule, and
    invariants hold throughout."""
    from repro.machine.invariants import install_checker

    interp = Interpreter(policy="random", seed=seed)
    install_checker(interp.machine, every=5)
    interp.run(
        """
        (define (job n)
          (future (lambda ()
                    (let loop ([i n] [acc 0])
                      (if (zero? i) acc (loop (- i 1) (+ acc i)))))))
        """
    )
    spelled = " ".join(f"(job {n * 3})" for n in range(1, nfutures + 1))
    got = interp.eval(f"(fold-left + 0 (map touch (list {spelled})))")
    expected = sum(sum(range(n * 3 + 1)) for n in range(1, nfutures + 1))
    assert got == expected
