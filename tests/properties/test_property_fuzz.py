"""Fuzz robustness: hostile input must produce *our* error types,
never an unhandled crash."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datum import MVector, from_pylist, intern
from repro.errors import ExpandError, ReaderError, ReproError
from repro.expander import ExpandEnv, expand_program
from repro.reader import read_all


@given(st.text(max_size=80))
@settings(max_examples=300, deadline=None)
def test_reader_total_over_arbitrary_text(text):
    """read_all either parses or raises ReaderError — nothing else."""
    try:
        read_all(text)
    except ReaderError:
        pass


@given(st.text(alphabet="()[]'`,@#;\\\" \n.abc01", max_size=60))
@settings(max_examples=300, deadline=None)
def test_reader_total_over_syntax_heavy_text(text):
    try:
        read_all(text)
    except ReaderError:
        pass


@given(st.text(alphabet="()[]'`,@#\\\" .xif10", max_size=50))
@settings(max_examples=200, deadline=None)
def test_expander_total_over_parseable_text(text):
    """Whatever the reader accepts, the expander either expands or
    raises ExpandError."""
    try:
        forms = read_all(text)
    except ReaderError:
        return
    try:
        expand_program(forms, ExpandEnv())
    except ExpandError:
        pass
    except RecursionError:
        pass  # pathological nesting; acceptable and documented


# -- structured datum fuzz ----------------------------------------------------

datum_atoms = st.one_of(
    st.integers(-5, 5),
    st.booleans(),
    st.sampled_from(
        [intern(n) for n in ("lambda", "if", "define", "quote", "x", "set!",
                             "let", "cond", "pcall", "begin", "...")]
    ),
    st.text(max_size=3),
)

datums = st.recursive(
    datum_atoms,
    lambda sub: st.one_of(
        st.lists(sub, max_size=4).map(from_pylist),
        st.lists(sub, max_size=3).map(MVector),
    ),
    max_leaves=12,
)


@given(st.lists(datums, max_size=4))
@settings(max_examples=300, deadline=None)
def test_expander_total_over_random_datums(forms):
    """Random structured data (including keyword-looking heads) either
    expands or raises ExpandError."""
    try:
        expand_program(list(forms), ExpandEnv())
    except ExpandError:
        pass


@given(datums)
@settings(max_examples=150, deadline=None)
def test_full_pipeline_never_crashes_uncontrolled(form):
    """Read-back of printed random data, expanded and evaluated with a
    tight budget: every failure is a ReproError."""
    from repro import Interpreter
    from repro.datum import scheme_repr

    text = scheme_repr(form)
    interp = Interpreter(prelude=False, max_steps=2_000)
    try:
        interp.eval(text)
    except ReproError:
        pass
    except RecursionError:
        pass
