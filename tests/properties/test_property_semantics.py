"""Property tests on the Section 6 semantics: random well-formed
programs agree between the rewriting system and the machine, and
substitution preserves well-formedness invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import StepBudgetExceeded, StuckTermError
from repro.semantics import compile_source, rewrite_run, run_both, values_agree
from repro.semantics.terms import free_vars, labels_of, substitute, Const, Var, Lam

# -- random program generator (textual, so both pipelines share it) ---------

integers = st.integers(min_value=0, max_value=20)


def exprs(depth):
    if depth == 0:
        return st.one_of(
            integers.map(str),
            st.sampled_from(["#t", "#f", "x", "y"]),
        )
    sub = exprs(depth - 1)
    return st.one_of(
        integers.map(str),
        st.sampled_from(["x", "y"]),
        st.tuples(sub, sub).map(lambda t: f"(+ {t[0]} {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"(* {t[0]} {t[1]})"),
        st.tuples(sub, sub, sub).map(lambda t: f"(if (zero? {t[0]}) {t[1]} {t[2]})"),
        st.tuples(st.sampled_from(["x", "y"]), sub, sub).map(
            lambda t: f"((lambda ({t[0]}) {t[1]}) {t[2]})"
        ),
        # spawn with abort, reinstatement, or unused controller
        sub.map(lambda e: f"(spawn (lambda (c) {e}))"),
        sub.map(lambda e: f"(spawn (lambda (c) (+ 1 (c (lambda (k) {e})))))"),
        sub.map(lambda e: f"(spawn (lambda (c) (+ 1 (c (lambda (k) (k {e}))))))"),
    )


def close_program(body: str) -> str:
    return f"((lambda (x) ((lambda (y) {body}) 2)) 1)"


@given(exprs(3).map(close_program))
@settings(max_examples=60, deadline=None)
def test_random_programs_agree(source):
    """Both systems produce the same value — or both reject the program
    (a stuck term on one side must be a machine error on the other)."""
    from repro.api import Interpreter
    from repro.errors import (
        DeadControllerError,
        SemanticsError,
        WrongTypeError,
    )
    from repro.semantics import rewrite_run

    try:
        term = compile_source(source)
    except SemanticsError:
        assume(False)
        return

    sem_outcome: tuple[str, object]
    try:
        sem_outcome = ("value", rewrite_run(term, max_steps=50_000).value)
    except (StuckTermError, SemanticsError):
        sem_outcome = ("error", None)
    except StepBudgetExceeded:
        assume(False)
        return

    interp = Interpreter(policy="serial", prelude=False, max_steps=50_000)
    mach_outcome: tuple[str, object]
    try:
        mach_outcome = ("value", interp.eval(source))
    except (WrongTypeError, DeadControllerError):
        mach_outcome = ("error", None)
    except StepBudgetExceeded:
        assume(False)
        return

    assert sem_outcome[0] == mach_outcome[0], source
    if sem_outcome[0] == "value":
        assert values_agree(sem_outcome[1], mach_outcome[1]), source


@given(exprs(2).map(close_program))
@settings(max_examples=40, deadline=None)
def test_rewriting_is_deterministic(source):
    from repro.errors import SemanticsError

    term = compile_source(source)
    try:
        first = rewrite_run(term, max_steps=20_000)
        second = rewrite_run(term, max_steps=20_000)
    except (StuckTermError, SemanticsError, StepBudgetExceeded):
        assume(False)
        return
    # Same value modulo fresh-variable names: compare step counts and
    # value kinds (fresh label/var allocation is the only nondeterminism
    # source, and it is in fact deterministic per run start).
    assert first.steps == second.steps
    assert type(first.value) is type(second.value)
    if isinstance(first.value, Const):
        assert first.value == second.value


# -- substitution invariants -------------------------------------------------

var_names = st.sampled_from(["a", "b", "c", "d"])

term_strategy = st.recursive(
    st.one_of(
        st.integers(0, 5).map(Const),
        var_names.map(Var),
    ),
    lambda sub: st.one_of(
        st.tuples(var_names, sub).map(lambda t: Lam(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: __import__("repro.semantics.terms", fromlist=["App"]).App(t[0], t[1])),
    ),
    max_leaves=12,
)


@given(term_strategy, var_names, term_strategy)
@settings(max_examples=100)
def test_substitution_removes_free_variable(term, name, value):
    assume(name not in free_vars(value))
    result = substitute(term, name, value)
    assert name not in free_vars(result)


@given(term_strategy, var_names, term_strategy)
@settings(max_examples=100)
def test_substitution_free_vars_bounded(term, name, value):
    result = substitute(term, name, value)
    allowed = (free_vars(term) - {name}) | free_vars(value)
    assert free_vars(result) <= allowed


@given(term_strategy, var_names)
def test_substituting_variable_for_itself_changes_nothing_semantically(term, name):
    result = substitute(term, name, Var(name))
    assert free_vars(result) == free_vars(term)


@given(term_strategy)
def test_labels_of_pure_lambda_terms_empty(term):
    assert labels_of(term) == frozenset()
