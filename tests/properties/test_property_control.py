"""Property tests over random *control-heavy* programs.

The generator produces deterministic, race-free programs mixing
``spawn``, controller aborts, reinstatements and ``pcall``.  For each
program we assert:

* the result is identical under round-robin (several quanta), random
  (several seeds) and serial scheduling — schedule independence;
* every structural invariant of the process tree holds at every machine
  step (the checker from :mod:`repro.machine.invariants` is installed
  as a trace hook).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Interpreter
from repro.errors import ReproError
from repro.machine.invariants import install_checker

# -- random control-program generator ---------------------------------------

numbers = st.integers(0, 9).map(str)


def exprs(depth: int):
    if depth == 0:
        return numbers
    sub = exprs(depth - 1)
    return st.one_of(
        numbers,
        st.tuples(sub, sub).map(lambda t: f"(+ {t[0]} {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"(pcall + {t[0]} {t[1]})"),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(pcall (lambda (a b) (+ a b)) {t[0]} (+ {t[1]} {t[2]}))"
        ),
        sub.map(lambda e: f"(spawn (lambda (c) {e}))"),
        sub.map(lambda e: f"(spawn (lambda (c) (+ 1 (c (lambda (k) {e})))))"),
        sub.map(lambda e: f"(spawn (lambda (c) (+ 1 (c (lambda (k) (k {e}))))))"),
        # capture inside a pcall branch: abort the whole fork
        st.tuples(sub, sub).map(
            lambda t: (
                f"(spawn (lambda (c) (pcall + (c (lambda (k) {t[0]})) {t[1]})))"
            )
        ),
        # capture inside a pcall branch: reinstate (resume the sibling)
        st.tuples(sub, sub).map(
            lambda t: (
                f"(spawn (lambda (c) (pcall + (c (lambda (k) (k {t[0]}))) {t[1]})))"
            )
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(if (zero? {t[0]}) {t[1]} {t[2]})"
        ),
    )


SCHEDULES = [
    {"policy": "round-robin", "quantum": 1},
    {"policy": "round-robin", "quantum": 7},
    {"policy": "round-robin", "quantum": 64},
    {"policy": "random", "seed": 11},
    {"policy": "random", "seed": 99},
    {"policy": "serial"},
]


@given(exprs(3))
@settings(max_examples=50, deadline=None)
def test_schedule_independence_and_invariants(source):
    results = []
    for config in SCHEDULES:
        interp = Interpreter(prelude=False, max_steps=200_000, **config)
        install_checker(interp.machine, every=3)
        try:
            results.append(interp.eval(source))
        except ReproError as exc:  # pragma: no cover - generator is closed
            raise AssertionError(f"{source} failed under {config}: {exc}") from exc
    first = results[0]
    assert all(r == first for r in results), (source, results)


@given(exprs(2), st.integers(0, 9))
@settings(max_examples=30, deadline=None)
def test_continuation_laws_on_random_bodies(body, n):
    """Two algebraic laws, on arbitrary (pure) bodies E:

    L1: (spawn (λc. E)) = E                          (unused controller)
    L2: (spawn (λc. (c (λk. (k E))))) = E            (immediate resume)
    """
    interp = Interpreter(prelude=False, max_steps=200_000)
    base = interp.eval(body)
    law1 = interp.eval(f"(spawn (lambda (c) {body}))")
    law2 = interp.eval(f"(spawn (lambda (c) (c (lambda (k) (k {body})))))")
    assert law1 == base
    assert law2 == base


@given(exprs(2))
@settings(max_examples=30, deadline=None)
def test_abort_discards_context_law(body):
    """L3: (+ 1 (spawn (λc. (* 2 (c (λk. E)))))) = (+ 1 E) — the abort
    discards exactly the context inside the process."""
    interp = Interpreter(prelude=False, max_steps=200_000)
    direct = interp.eval(f"(+ 1 {body})")
    aborted = interp.eval(
        f"(+ 1 (spawn (lambda (c) (* 2 (c (lambda (k) {body}))))))"
    )
    assert aborted == direct


@given(exprs(2), st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_multishot_determinism(body, repeats):
    """Reinstating the same continuation repeatedly yields the same
    value every time for pure bodies."""
    interp = Interpreter(prelude=False, max_steps=500_000)
    interp.run(f"(define k (spawn (lambda (c) (+ (c (lambda (kk) kk)) {body}))))")
    values = {interp.eval("(k 5)") for _ in range(repeats + 1)}
    assert len(values) == 1
