"""Property tests on the expander: random derived-form programs agree
with a Python reference evaluator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Interpreter

# -- a tiny boolean/arith expression language generated as both Scheme
#    text and a Python-computable value -------------------------------------


def literals():
    return st.one_of(
        st.integers(-20, 20).map(lambda n: (str(n), n)),
        st.booleans().map(lambda b: ("#t" if b else "#f", b)),
    )


def exprs(depth: int):
    if depth == 0:
        return literals()
    sub = exprs(depth - 1)

    def binop(symbol, fn):
        return st.tuples(sub, sub).map(
            lambda pair: (
                f"({symbol} {pair[0][0]} {pair[1][0]})",
                fn(pair[0][1], pair[1][1]),
            )
        )

    def scheme_and(pair):
        a, b = pair
        value = b[1] if a[1] is not False else False
        return (f"(and {a[0]} {b[0]})", value)

    def scheme_or(pair):
        a, b = pair
        value = a[1] if a[1] is not False else b[1]
        return (f"(or {a[0]} {b[0]})", value)

    def scheme_if(triple):
        test, then, els = triple
        value = then[1] if test[1] is not False else els[1]
        return (f"(if {test[0]} {then[0]} {els[0]})", value)

    def scheme_cond(triple):
        test, then, els = triple
        value = then[1] if test[1] is not False else els[1]
        return (f"(cond [{test[0]} {then[0]}] [else {els[0]}])", value)

    def scheme_when(pair):
        test, body = pair
        if test[1] is not False:
            return (f"(when {test[0]} {body[0]})", body[1])
        return (f"(if #t {body[0]} 0)", body[1])  # keep values comparable

    def scheme_let(pair):
        value, body = pair
        # (let ([tmp v]) body) where body ignores tmp — binding works.
        return (f"(let ([tmp {value[0]}]) {body[0]})", body[1])

    def scheme_not(one):
        return (f"(not {one[0]})", one[1] is False)

    numeric_sub = st.one_of(
        st.integers(-20, 20).map(lambda n: (str(n), n)),
        # numeric-only subtrees for arithmetic operators
    )

    def arith(symbol, fn):
        return st.tuples(numeric_sub, numeric_sub).map(
            lambda pair: (
                f"({symbol} {pair[0][0]} {pair[1][0]})",
                fn(pair[0][1], pair[1][1]),
            )
        )

    return st.one_of(
        sub,
        arith("+", lambda a, b: a + b),
        arith("-", lambda a, b: a - b),
        arith("*", lambda a, b: a * b),
        arith("max", max),
        arith("min", min),
        st.tuples(sub, sub).map(scheme_and),
        st.tuples(sub, sub).map(scheme_or),
        st.tuples(sub, sub, sub).map(scheme_if),
        st.tuples(sub, sub, sub).map(scheme_cond),
        st.tuples(sub, sub).map(scheme_let),
        sub.map(scheme_not),
    )


@given(exprs(3))
@settings(max_examples=150, deadline=None)
def test_derived_forms_agree_with_reference(case):
    source, expected = case
    interp = Interpreter(prelude=False)
    got = interp.eval(source)
    if isinstance(expected, bool):
        assert got is expected, source
    else:
        assert got == expected and not isinstance(got, bool), source


@given(st.lists(st.integers(-10, 10), min_size=0, max_size=8))
@settings(max_examples=60, deadline=None)
def test_quasiquote_splicing_roundtrip(items):
    interp = Interpreter()
    spelled = "(" + " ".join(str(x) for x in items) + ")"
    assert (
        interp.eval_to_string(f"(let ([xs '{spelled}]) `(start ,@xs end))")
        == f"(start{''.join(' ' + str(x) for x in items)} end)"
    )


@given(st.integers(0, 30), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_do_loop_matches_python_range(limit, step):
    interp = Interpreter(prelude=False)
    got = interp.eval(
        f"(do ([i 0 (+ i {step})] [acc 0 (+ acc i)]) ((>= i {limit}) acc))"
    )
    assert got == sum(range(0, limit, step))


@given(st.lists(st.integers(0, 100), min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_case_dispatch(values):
    interp = Interpreter(prelude=False)
    key = values[0]
    clauses = " ".join(f"[({v}) '{chr(97 + i % 26)}{i}]" for i, v in enumerate(values))
    got = interp.eval(f"(case {key} {clauses} [else 'none])")
    first = values.index(key)
    assert got.name == f"{chr(97 + first % 26)}{first}"
