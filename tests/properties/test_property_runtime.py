"""Property tests for the tasklet runtime."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Call, Invoke, Pcall, Resume, Runtime, Spawn, parallel_map


@given(
    st.lists(st.integers(-100, 100), min_size=1, max_size=8),
    st.integers(1, 16),
)
@settings(max_examples=40, deadline=None)
def test_parallel_map_matches_builtin_map(items, quantum):
    def square(x):
        yield Call(lambda: None)
        return x * x

    def main():
        values = yield Call(parallel_map, square, items)
        return values

    assert Runtime(quantum=quantum).run(main) == [x * x for x in items]


@given(st.integers(0, 6), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_nested_pcall_tree_sums_correctly(depth, quantum):
    """A perfect binary pcall tree of the given depth sums its leaves
    correctly under any quantum."""

    def tree_sum(d):
        def body():
            if d == 0:
                return 1
            value = yield Pcall(lambda a, b: a + b, tree_sum(d - 1), tree_sum(d - 1))
            return value

        return body

    def main():
        value = yield Call(tree_sum(depth))
        return value

    assert Runtime(quantum=quantum).run(main) == 2**depth


@given(st.integers(-1000, 1000))
@settings(max_examples=30, deadline=None)
def test_suspend_resume_identity(value):
    """Spawning, suspending at a point, and resuming with v makes v the
    value of the suspension point — for any v."""

    def main():
        def process(ctrl):
            got = yield Invoke(ctrl, lambda k: k)
            return got

        k = yield Spawn(process)
        result = yield Resume(k, value)
        return result

    assert Runtime().run(main) == value


@given(st.lists(st.integers(0, 30), min_size=2, max_size=6), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_pcall_result_order_independent_of_branch_cost(costs, quantum):
    """Branches with arbitrary work amounts deliver positionally."""

    def make_branch(index, cost):
        def body():
            for _ in range(cost):
                yield Call(lambda: None)
            return index

        return body

    def main():
        values = yield Pcall(
            lambda *vs: list(vs),
            *[make_branch(i, c) for i, c in enumerate(costs)],
        )
        return values

    assert Runtime(quantum=quantum).run(main) == list(range(len(costs)))


@given(st.integers(1, 200), st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_engine_slicing_never_changes_answer(work, fuel):
    from repro.runtime.engines import make_engine

    def body():
        total = 0
        for i in range(work):
            total += i
            yield Call(lambda: None)
        return total

    outcome = make_engine(body).run(fuel)
    while not outcome.done:
        outcome = outcome.engine.run(fuel)
    assert outcome.value == sum(range(work))
