"""spawn and controllers: Section 4 semantics."""

import pytest

from repro.control.spawn import ProcessContinuation, ProcessController
from repro.errors import ArityError, DeadControllerError


def test_spawn_normal_return(interp):
    assert interp.eval("(spawn (lambda (c) 42))") == 42


def test_spawn_passes_controller(interp):
    controller = interp.eval("(spawn (lambda (c) c))")
    assert isinstance(controller, ProcessController)


def test_controller_abort_discarding_continuation(interp):
    # Receiver ignores the continuation: pure nonlocal exit.
    assert interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) 99)))))") == 99


def test_controller_value_flows_above_label(interp):
    # (c f)'s receiver result becomes the spawn's value, bypassing the
    # +1 pending inside the process.
    assert interp.eval("(* 2 (spawn (lambda (c) (+ 1 (c (lambda (k) 10))))))") == 20


def test_controller_capture_produces_process_continuation(interp):
    k = interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) k)))))")
    assert isinstance(k, ProcessContinuation)


def test_reinstatement_composes(interp):
    # k = <spawn-label: (+ 1 [])>; (k 10) grafts it here: 1 + 10 = 11.
    assert interp.eval("((spawn (lambda (c) (+ 1 (c (lambda (k) k))))) 10)") == 11


def test_reinstatement_composes_with_current_continuation(interp):
    # The graft composes: the result of the subtree flows into (* 3 _).
    assert (
        interp.eval("(* 3 ((spawn (lambda (c) (+ 1 (c (lambda (k) k))))) 10))") == 33
    )


def test_nested_spawns_independent_controllers(interp):
    assert (
        interp.eval(
            """
            (spawn (lambda (outer)
                     (+ 1 (spawn (lambda (inner)
                                   (+ 10 (inner (lambda (k) 100))))))))
            """
        )
        == 101
    )


def test_inner_exit_through_outer_controller(interp):
    # Inner code aborts through the *outer* controller: both pending
    # additions are discarded.
    assert (
        interp.eval(
            """
            (spawn (lambda (outer)
                     (+ 1 (spawn (lambda (inner)
                                   (+ 10 (outer (lambda (k) 100))))))))
            """
        )
        == 100
    )


def test_spawn_requires_procedure(interp):
    from repro.errors import WrongTypeError

    with pytest.raises(WrongTypeError):
        interp.eval("(spawn 5)")


def test_controller_takes_one_argument(interp):
    with pytest.raises(ArityError):
        interp.eval("(spawn (lambda (c) (c)))")


def test_process_continuation_takes_one_argument(interp):
    with pytest.raises(ArityError):
        interp.eval("((spawn (lambda (c) (c (lambda (k) k)))))")


def test_controller_receiver_can_be_any_procedure(interp):
    # Receiver gets the continuation and can use primitives on it.
    assert interp.eval("(spawn (lambda (c) (c procedure?)))") is True


def test_spawn_stats(interp):
    before = interp.stats["captures"]
    interp.eval("(spawn (lambda (c) (c (lambda (k) 1))))")
    assert interp.stats["captures"] == before + 1


def test_reinstatement_counts(interp):
    before = interp.stats["reinstatements"]
    interp.eval("((spawn (lambda (c) (c (lambda (k) k)))) 5)")
    assert interp.stats["reinstatements"] == before + 1


def test_spawn_return_value_is_body_value(interp):
    assert interp.eval("(spawn (lambda (c) (* 6 7)))") == 42


def test_controller_escapes_as_value(interp):
    """The controller can be stored and used later while the process is
    still active."""
    assert (
        interp.eval(
            """
            (define stash #f)
            (spawn (lambda (c)
                     (set! stash c)
                     (+ 1 (stash (lambda (k) 7)))))
            """
        )
        == 7
    )
