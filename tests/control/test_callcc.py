"""Traditional call/cc in sequential programs (whole-tree policy =
classic R3RS behaviour)."""

import pytest


def test_callcc_escape(interp):
    assert interp.eval("(call/cc (lambda (k) (+ (k 0) 1)))") == 0


def test_callcc_no_escape(interp):
    assert interp.eval("(call/cc (lambda (k) 42))") == 42


def test_callcc_in_context(interp):
    assert interp.eval("(+ 1 (call/cc (lambda (k) (+ (k 10) 100))))") == 11


def test_callcc_continuation_is_abortive(interp):
    # Invoking k discards the pending (* 1000 _).
    assert interp.eval("(+ 1 (call/cc (lambda (k) (* 1000 (k 1)))))") == 2


def test_callcc_multi_shot(interp):
    """The generator-style classic: store k, re-enter later."""
    interp.run(
        """
        (define saved #f)
        (define count 0)
        (define result
          (+ 1 (call/cc (lambda (k) (set! saved k) 0))))
        """
    )
    # Re-entering adds 1 each time to the value passed.
    interp.run("(set! count (+ count 1))")
    assert interp.eval("result") == 1
    # Re-enter the captured continuation: this *restarts* the top-level
    # form (define result ...), rebinding result.
    interp.eval("(if (< count 3) (saved 10) 'stop)")
    assert interp.eval("result") == 11


def test_callcc_loop_via_continuation(interp):
    """A loop implemented purely with call/cc + set! (one top-level
    form: like a REPL, each top-level form has its own continuation)."""
    interp.run(
        """
        (define total 0)
        (let ([resume #f])
          (let ([i (call/cc (lambda (k) (set! resume k) 0))])
            (set! total (+ total i))
            (if (< i 4) (resume (+ i 1)) 'done)))
        """
    )
    assert interp.eval("total") == 10  # 0+1+2+3+4


def test_callcc_top_level_forms_have_independent_continuations(interp):
    """Invoking a continuation captured in an earlier top-level form
    re-enters *that form only* — the later forms are not part of it
    (standard REPL semantics)."""
    interp.run("(define k3 #f)")
    interp.run("(define witness (call/cc (lambda (k) (set! k3 k) 'first)))")
    interp.run("(define ran-after 0)")
    interp.eval("(if (eq? witness 'first) (k3 'second) 'stop)")
    assert interp.eval("witness").name == "second"
    assert interp.eval("ran-after") == 0  # later form did not re-run


def test_paper_product_callcc(paper_interp):
    assert paper_interp.eval("(product '(1 2 3 4))") == 24
    assert paper_interp.eval("(product '(1 0 3 4))") == 0


def test_paper_product_avoids_multiplications(paper_interp):
    """With a zero up front, exit fires before any multiplication —
    observable because multiplying a symbol would crash."""
    assert paper_interp.eval("(product '(0 not-a-number))") == 0


def test_paper_product_of_products_shared_exit(paper_interp):
    """Section 3: one escape continuation shared by two sequential
    traversals — a zero in either list aborts the whole thing."""
    assert paper_interp.eval("(product-of-products '(1 2) '(3 4))") == 24
    assert paper_interp.eval("(product-of-products '(1 0) '(x y))") == 0
    assert paper_interp.eval("(product-of-products '(1 2) '(0 y))") == 0


def test_callcc_leaf_sequential_behaves_classically(interp):
    assert interp.eval("(+ 1 (call/cc-leaf (lambda (k) (* 1000 (k 1)))))") == 2


def test_callcc_leaf_inside_single_branch(paper_interp):
    """Leaf-policy continuations are exactly right for branch-local
    exits: the paper's first concurrent product example."""
    assert (
        paper_interp.eval(
            "(pcall + (product-leaf '(1 0 3)) (product-leaf '(2 2)))"
        )
        == 4
    )


def test_call_with_current_continuation_alias(interp):
    assert interp.eval("(call-with-current-continuation (lambda (k) (k 7)))") == 7


def test_callcc_arity(interp):
    from repro.errors import ArityError

    with pytest.raises(ArityError):
        interp.eval("(call/cc (lambda (k) (k)))")


def test_callcc_k_escapes_upward(interp):
    """k survives its dynamic extent (classic)."""
    interp.run("(define k2 (call/cc (lambda (k) k)))")
    # k2 is the continuation of the define; invoking it re-defines k2.
    interp.eval("(if (procedure? k2) (k2 99) 'done)")
    assert interp.eval("k2") == 99
