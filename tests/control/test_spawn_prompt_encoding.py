"""Section 4's encoding remark, executable.

The paper: "One can think of spawn as a version of # that creates a
new F each time it is used... we could define spawn approximately as
(λp. #ᵢ (p Fᵢ)).  **However, this definition does not accurately
reflect when application of the controller Fᵢ is valid.**  F captures a
continuation only up to a # application; the # application itself is
left as part of the continuation of the F application.  If, instead, F
captured a continuation up to and including a # application, the
approximate definition would be more accurate."

We define the encoding with our (single) prompt/F pair and exhibit the
exact divergences the paper predicts — plus the cases where the
encoding *does* coincide.
"""

import pytest

from repro import Interpreter
from repro.errors import DeadControllerError, PromptMissingError

ENCODING = """
;; spawn≈: the paper's approximate definition (λp. #(p F-as-controller)).
(define (spawn# p)
  (prompt (p (lambda (f) (F f)))))
"""


@pytest.fixture
def interp():
    i = Interpreter()
    i.run(ENCODING)
    return i


class TestWhereTheEncodingAgrees:
    def test_normal_return(self, interp):
        assert interp.eval("(spawn# (lambda (c) 42))") == interp.eval(
            "(spawn (lambda (c) 42))"
        )

    def test_simple_abort(self, interp):
        real = interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))")
        encoded = interp.eval("(spawn# (lambda (c) (+ 1 (c (lambda (k) 9)))))")
        assert real == encoded == 9

    def test_single_resume_value(self, interp):
        real = interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))")
        encoded = interp.eval("(spawn# (lambda (c) (+ 1 (c (lambda (k) (k 10))))))")
        assert real == encoded == 11


class TestWhereTheEncodingDiverges:
    def test_resume_inside_receiver_happens_to_agree(self, interp):
        """Resuming *within the receiver's dynamic extent* masks the
        difference: F leaves the prompt in place, so a second use still
        finds it.  (This is why the paper calls the encoding merely
        'approximate' rather than wrong everywhere.)"""
        program_template = """
        ({spawn} (lambda (c)
                   (let ([x (c (lambda (k) (k 'resumed)))])
                     (c (lambda (k2) (list 'second-ok x))))))
        """
        for spawn in ("spawn", "spawn#"):
            assert (
                interp.eval_to_string(program_template.format(spawn=spawn))
                == "(second-ok resumed)"
            )

    def test_validity_after_reinstatement_outside_the_prompt(self, interp):
        """THE divergence the paper's remark pinpoints: F's captured
        continuation excludes the label (# application), so resuming it
        elsewhere does not re-establish anything.  Real spawn's process
        continuation *includes* the root: the controller is valid again
        wherever the continuation is reinstated."""
        body = """(lambda (c)
                     (let ([x (c (lambda (k) k))])
                       (c (lambda (k2) (list 'second-ok x)))))"""
        interp.run(f"(define k-real (spawn {body}))")
        # Resume at top level: the root travels with the continuation.
        assert interp.eval_to_string("(k-real 'v)") == "(second-ok v)"

        interp.run(f"(define k-enc (spawn# {body}))")
        with pytest.raises(PromptMissingError):
            interp.eval("(k-enc 'v)")  # no prompt came along; second use dies

    def test_prompts_shadow_but_roots_do_not(self, interp):
        """Nested spawns: inner code can reach the *outer* root with
        the outer controller.  Nested spawn#s: the inner prompt shadows
        — the outer 'controller' captures only to the inner prompt."""
        real = interp.eval(
            """
            (spawn (lambda (outer)
                     (+ 1 (spawn (lambda (inner)
                                   (+ 10 (outer (lambda (k) 100))))))))
            """
        )
        assert real == 100  # both pending additions discarded
        encoded = interp.eval(
            """
            (spawn# (lambda (outer)
                      (+ 1 (spawn# (lambda (inner)
                                     (+ 10 (outer (lambda (k) 100))))))))
            """
        )
        # The outer F is shadowed by the inner prompt: it aborts only
        # (+ 10 _), so the outer (+ 1 _) still applies.
        assert encoded == 101

    def test_use_after_return_differs(self, interp):
        """Real spawn: a controller used after its process returned is
        a clean DeadControllerError.  Encoding: the F closure just
        looks for *any* enclosing prompt — used inside someone else's
        prompt it silently captures the wrong extent."""
        interp.run("(define leak (vector #f))")
        with pytest.raises(DeadControllerError):
            interp.eval(
                """
                (begin
                  (spawn (lambda (c) (vector-set! leak 0 c) 'done))
                  ((vector-ref leak 0) (lambda (k) 'late)))
                """
            )
        interp.run(
            """
            (spawn# (lambda (c) (vector-set! leak 0 c) 'done))
            """
        )
        # The leaked encoded controller, applied under an unrelated
        # prompt, hijacks that prompt instead of erroring:
        hijacked = interp.eval(
            "(prompt (+ 1 ((vector-ref leak 0) (lambda (k) 'hijacked))))"
        )
        assert hijacked.name == "hijacked"  # silently wrong extent


def test_encoding_definition_matches_paper_shape(interp):
    """spawn# really is (λp. #(p F)): check the pieces."""
    assert interp.eval("(procedure? spawn#)") is True
    # Its normal-return path goes through a prompt (falls through):
    assert interp.eval("(spawn# (lambda (c) 7))") == 7
