"""Machine-level engines (reference [6] in Scheme)."""

import pytest

from repro import Interpreter
from repro.control.engines import EngineValue
from repro.errors import SchemeError, WrongTypeError


@pytest.fixture
def interp():
    i = Interpreter()
    i.run(
        """
        (define (sum-to n)
          (lambda ()
            (let loop ([i n] [acc 0])
              (if (zero? i) acc (loop (- i 1) (+ acc i))))))
        (define (drive eng fuel)
          (engine-run eng fuel
            (lambda (value remaining) (list 'done value remaining))
            (lambda (eng2) (drive eng2 fuel))))
        """
    )
    return i


def test_make_engine_returns_engine(interp):
    assert isinstance(interp.eval("(make-engine (sum-to 5))"), EngineValue)
    assert interp.eval("(engine? (make-engine (sum-to 1)))") is True
    assert interp.eval("(engine? 5)") is False


def test_completes_with_big_fuel(interp):
    result = interp.eval_to_string(
        "(engine-run (make-engine (sum-to 5)) 100000 "
        "(lambda (v r) (list 'done v)) (lambda (e) 'expired))"
    )
    assert result == "(done 15)"


def test_expires_with_small_fuel(interp):
    assert (
        interp.eval(
            "(engine-run (make-engine (sum-to 1000)) 5 "
            "(lambda (v r) 'done) (lambda (e) 'expired))"
        ).name
        == "expired"
    )


def test_sliced_equals_unsliced(interp):
    assert interp.eval("(car (cdr (drive (make-engine (sum-to 200)) 37)))") == sum(
        range(201)
    )


def test_remaining_fuel_reported(interp):
    # With huge fuel, remaining must be positive.
    remaining = interp.eval(
        "(engine-run (make-engine (sum-to 3)) 100000 "
        "(lambda (v r) r) (lambda (e) -1))"
    )
    assert remaining > 0


def test_mileage_accumulates(interp):
    interp.run("(define e (make-engine (sum-to 500)))")
    interp.eval("(engine-run e 10 (lambda (v r) v) (lambda (e2) e2))")
    first = interp.eval("(engine-mileage e)")
    interp.eval("(engine-run e 10 (lambda (v r) v) (lambda (e2) e2))")
    assert interp.eval("(engine-mileage e)") > first


def test_spent_engine_rejected(interp):
    interp.run("(define e (make-engine (sum-to 1)))")
    interp.eval("(engine-run e 100000 (lambda (v r) v) (lambda (e2) e2))")
    with pytest.raises(SchemeError, match="completed"):
        interp.eval("(engine-run e 10 (lambda (v r) v) (lambda (e2) e2))")


def test_bad_arguments(interp):
    with pytest.raises(WrongTypeError):
        interp.eval("(engine-run 5 10 car cdr)")
    with pytest.raises(SchemeError):
        interp.eval("(engine-run (make-engine (sum-to 1)) 0 car cdr)")
    with pytest.raises(WrongTypeError):
        interp.eval("(engine-mileage 9)")


def test_engine_with_internal_concurrency(interp):
    """The engine body may pcall and spawn freely — a whole tree pauses
    between slices."""
    interp.run(
        """
        (define e (make-engine (lambda ()
          (pcall +
                 (spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))
                 (let loop ([i 50]) (if (zero? i) 100 (loop (- i 1))))))))
        """
    )
    assert interp.eval("(car (cdr (drive e 13)))") == 111


def test_round_robin_in_scheme(interp):
    """A fair scheduler written in Scheme over machine engines."""
    interp.run(
        """
        (define (run-all engines acc fuel)
          (if (null? engines)
              (reverse acc)
              (engine-run (car engines) fuel
                (lambda (v r) (run-all (cdr engines) (cons v acc) fuel))
                (lambda (e) (run-all (append (cdr engines) (list e)) acc fuel)))))
        """
    )
    # Note: round-robin by requeueing expired engines at the back;
    # completed values accumulate in completion order.
    result = interp.eval(
        """
        (let ([values (run-all (list (make-engine (sum-to 30))
                                     (make-engine (sum-to 10))
                                     (make-engine (sum-to 20)))
                               '() 25)])
          (fold-left + 0 values))
        """
    )
    assert result == sum(range(31)) + sum(range(11)) + sum(range(21))


def test_nested_engines(interp):
    interp.run(
        """
        (define inner-sum
          (lambda ()
            (drive (make-engine (sum-to 50)) 11)))
        (define outer (make-engine inner-sum))
        """
    )
    result = interp.eval_to_string("(drive outer 17)")
    assert "1275" in result  # sum(1..50)


def test_controller_from_engine_invalid_outside(interp):
    """A controller created inside an engine belongs to the engine's
    tree; using it in the host machine is structurally invalid."""
    from repro.errors import DeadControllerError

    interp.run(
        """
        (define leaked
          (engine-run
            (make-engine (lambda () (spawn (lambda (c) c))))
            100000
            (lambda (v r) v)
            (lambda (e) 'expired)))
        """
    )
    with pytest.raises(DeadControllerError):
        interp.eval("(leaked (lambda (k) k))")


def test_engine_shares_the_store(interp):
    """Engines share the global store with the host (one store, many
    trees — as with futures)."""
    interp.run("(define counter 0)")
    interp.run(
        """
        (define e (make-engine (lambda ()
          (set! counter (+ counter 1))
          counter)))
        """
    )
    interp.run("(set! counter 100)")
    value = interp.eval(
        "(engine-run e 100000 (lambda (v r) v) (lambda (e2) 'expired))"
    )
    assert value == 101
    assert interp.eval("counter") == 101
