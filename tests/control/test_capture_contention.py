"""Capture contention — §7's mutual-exclusion requirement.

The paper: "Some mechanism for mutual exclusion is needed to prevent
more than one processor from attempting to remove the same subtree at
the same time."  In this machine a capture is atomic (it completes
within one scheduler step), so contention resolves deterministically:
the first capturer wins; the loser — whose root was swept away inside
the winner's subtree — gets a clean DeadControllerError or, if its root
survived, a smaller capture.  These tests pin both outcomes.
"""

import pytest

from repro import Interpreter
from repro.errors import DeadControllerError, SchemeError


def test_two_branches_race_for_nested_roots():
    """Branch 2's controller root (inner) lies inside branch 1's
    controller root (outer).  Whoever captures first determines the
    other's fate; with round-robin the outer capturer runs first, so
    the inner branch is suspended inside the captured subtree and its
    capture never happens."""
    interp = Interpreter(quantum=1)
    result = interp.eval(
        """
        (spawn (lambda (outer)
          (pcall list
                 ;; branch 1: spin briefly, then capture at OUTER.
                 (let spin ([i 0])
                   (if (= i 30)
                       (outer (lambda (k) 'outer-won))
                       (spin (+ i 1))))
                 ;; branch 2: its own spawn; spin longer, then capture
                 ;; at its INNER root.
                 (spawn (lambda (inner)
                          (let spin ([i 0])
                            (if (= i 500)
                                (inner (lambda (k) 'inner-won))
                                (spin (+ i 1)))))))))
        """
    )
    assert result.name == "outer-won"


def test_loser_with_swept_root_errors_cleanly():
    """Publish the inner controller to the outer context; after the
    outer capture removes the whole subtree, a later use of the inner
    controller must raise, not corrupt anything."""
    interp = Interpreter(quantum=1)
    interp.run("(define stash (vector #f))")
    result = interp.eval(
        """
        (spawn (lambda (outer)
          (pcall list
                 (let spin ([i 0])
                   (if (= i 50)
                       (outer (lambda (k) 'aborted))
                       (spin (+ i 1))))
                 (spawn (lambda (inner)
                          (vector-set! stash 0 inner)
                          (let spin () (spin)))))))
        """
    )
    assert result.name == "aborted"
    with pytest.raises(DeadControllerError):
        interp.eval("((vector-ref stash 0) (lambda (k) 'too-late))")
    # The machine is still healthy.
    assert interp.eval("(+ 1 1)") == 2


def test_sequential_captures_of_disjoint_subtrees_commute():
    """Captures of disjoint subtrees cannot contend: both succeed, in
    either scheduling order."""
    for quantum in (1, 3, 17):
        interp = Interpreter(quantum=quantum)
        result = interp.eval(
            """
            (pcall list
                   (spawn (lambda (a) (+ 1 (a (lambda (k) 'left)))))
                   (spawn (lambda (b) (+ 1 (b (lambda (k) 'right))))))
            """
        )
        assert interp.eval("(car '(x))") is not None  # machine healthy
        from repro.datum import to_pylist

        names = [v.name for v in to_pylist(result)]
        assert names == ["left", "right"]


def test_capture_atomicity_no_partial_suspension():
    """After any capture, the tree contains no half-suspended state:
    the invariant checker runs on every step of a contention-heavy
    workload."""
    from repro.machine.invariants import install_checker

    interp = Interpreter(quantum=1)
    install_checker(interp.machine)
    interp.eval(
        """
        (spawn (lambda (outer)
          (pcall list
                 (outer (lambda (k) (k 'resume)))
                 (spawn (lambda (inner)
                          (let spin ([i 0])
                            (if (= i 40) (inner (lambda (k) 'i)) (spin (+ i 1)))))))))
        """
    )
