"""Interactions between control operators and the rest of the system."""

import pytest

from repro import Interpreter


def test_spawn_inside_callcc(interp):
    assert (
        interp.eval(
            """
            (call/cc (lambda (k)
                       (spawn (lambda (c)
                                (+ 1 (c (lambda (kk) 10)))))))
            """
        )
        == 10
    )


def test_callcc_inside_spawn_escapes_whole_tree(interp):
    # Whole-tree call/cc from inside a process escapes everything,
    # including the spawn label.
    assert (
        interp.eval(
            """
            (+ 1 (spawn (lambda (c)
                          (+ 10 (call/cc (lambda (k) (k 100)))))))
            """
        )
        == 111
    )


def test_controller_through_closure_boundary(interp):
    """Controllers are first-class: pass them through closures and data
    structures, then invoke far from the spawn point."""
    assert (
        interp.eval(
            """
            (define (make-escaper c) (lambda (v) (c (lambda (k) v))))
            (spawn (lambda (c)
                     (let ([escape (make-escaper c)])
                       (+ 1 (escape 'out)))))
            """
        ).name
        == "out"
    )


def test_two_controllers_interleaved_capture(interp):
    """Capture with the outer controller while the inner label is live:
    the inner label is part of the captured subtree, so the inner
    controller is valid again after reinstatement."""
    interp.run(
        """
        (define k-outer
          (spawn (lambda (outer)
                   (* 2 (spawn (lambda (inner)
                                 (+ 1 (outer (lambda (k) k)))))))))
        """
    )
    # k-outer = <outer: (* 2 <inner: (+ 1 [])>)>
    assert interp.eval("(k-outer 10)") == 22


def test_capture_with_pending_primitive_args(interp):
    # Capture mid-way through evaluating a primitive's arguments.
    interp.run(
        """
        (define k
          (spawn (lambda (c)
                   (list 'a (c (lambda (k) k)) 'b))))
        """
    )
    assert interp.eval_to_string("(k 'mid)") == "(a mid b)"


def test_spawned_process_defining_globals(interp):
    interp.run("(define glob-probe #f)")
    interp.eval("(spawn (lambda (c) (set! glob-probe 'set)))")
    assert interp.eval("glob-probe").name == "set"


def test_reinstatement_inside_pcall_branch(interp):
    """Reinstate a process continuation inside one branch of a pcall:
    the graft composes with that branch only."""
    interp.run("(define k (spawn (lambda (c) (+ 1 (c (lambda (kk) kk))))))")
    assert interp.eval("(pcall list (k 10) (k 20))") is not None
    assert interp.eval_to_string("(pcall list (k 10) (k 20))") == "(11 21)"


def test_engine_like_stepping_with_controllers(interp):
    """A mini cooperative scheduler in Scheme: a process suspends
    itself via its controller; the driver resumes it repeatedly —
    the essence of the paper's engines/coroutines claim."""
    interp.run(
        """
        (define (make-task)
          (spawn (lambda (c)
                   (define (suspend v)
                     (c (lambda (k) (cons v (lambda (x) (k x))))))
                   (suspend 1)
                   (suspend 2)
                   (suspend 3)
                   'finished)))
        """
    )
    assert (
        interp.eval(
            """
            (let loop ([r (make-task)] [acc '()])
              (if (pair? r)
                  (loop ((cdr r) 'ignored) (cons (car r) acc))
                  (cons r acc)))
            """
        )
        is not None
    )
    out = interp.eval_to_string(
        """
        (let loop ([r (make-task)] [acc '()])
          (if (pair? r)
              (loop ((cdr r) 'ignored) (cons (car r) acc))
              (reverse acc)))
        """
    )
    assert out == "(1 2 3)"


def test_prompt_inside_pcall_branch(interp):
    assert (
        interp.eval(
            """
            (pcall +
                   (prompt (+ 10 (F (lambda (k) 1))))
                   (prompt (+ 20 (F (lambda (k) (k 2))))))
            """
        )
        == 23
    )


def test_spawn_in_macro_generated_code(interp):
    interp.run(
        """
        (extend-syntax (with-exit)
          [(with-exit name body ...)
           (spawn (lambda (c)
                    (let ([name (lambda (v) (c (lambda (k) v)))])
                      body ...)))])
        """
    )
    assert interp.eval("(with-exit out (+ 1 (out 5)))") == 5
    assert interp.eval("(with-exit out 'normal)").name == "normal"


def test_step_budget_applies_across_branches():
    from repro.errors import StepBudgetExceeded

    interp = Interpreter(max_steps=5_000)
    with pytest.raises(StepBudgetExceeded):
        interp.eval(
            "(pcall + (let a ([i 0]) (a i)) (let b ([i 0]) (b i)))"
        )
