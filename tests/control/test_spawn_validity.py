"""Section 4's validity rules, including the paper's three examples
verbatim."""

import pytest

from repro.errors import DeadControllerError, InvalidControllerError
from repro.lib import paper_examples


def test_paper_invalid_after_return(interp):
    """((spawn (lambda (c) c)) (lambda (k) k)) — the root no longer
    exists when the controller is applied."""
    with pytest.raises(DeadControllerError):
        interp.eval(paper_examples.INVALID_AFTER_RETURN)


def test_paper_invalid_after_use(interp):
    """The second application is invalid: the first application removed
    the root."""
    with pytest.raises(DeadControllerError):
        interp.eval(paper_examples.INVALID_AFTER_USE)


def test_paper_valid_after_reinstatement_returns_identity(interp):
    """The third Section 4 example: 'The result of this expression is a
    procedure that returns its argument.'"""
    source = paper_examples.VALID_AFTER_REINSTATEMENT.strip()
    assert interp.eval(f"({source} 'witness)").name == "witness"
    assert interp.eval(f"({source} 42)") == 42


def test_controller_invalid_after_normal_return(interp):
    interp.run("(define c2 (spawn (lambda (c) c)))")
    with pytest.raises(DeadControllerError):
        interp.eval("(c2 (lambda (k) k))")


def test_controller_invalid_from_sibling_branch(interp):
    """A controller whose root lives in one pcall branch is invalid
    when applied from a sibling branch (the root is not in the
    *continuation of the application*)."""
    interp.run("(define cell (cons #f #f))")
    with pytest.raises(DeadControllerError):
        interp.eval(
            """
            (pcall (lambda (a b) (list a b))
                   ;; branch 1: spawn, leak the controller, then spin
                   ;; until branch 2 uses it.
                   (spawn (lambda (c)
                            (set-car! cell c)
                            (let wait ([i 0])
                              (if (cdr cell) 'done (wait (+ i 1))))))
                   ;; branch 2: wait for the controller, then misuse it.
                   (let wait ()
                     (let ([c (car cell)])
                       (if c
                           (begin (set-cdr! cell #t) (c (lambda (k) k)))
                           (wait)))))
            """
        )


def test_controller_valid_again_after_reinstatement(interp):
    interp.run(
        """
        (define k1 (spawn (lambda (c) (+ 1 (c (lambda (k) k))))))
        """
    )
    # First reinstatement re-validates the controller inside... but the
    # captured body has no further controller use; meta-test: reuse of
    # k1 is fine (multi-shot), unlike the controller.
    assert interp.eval("(k1 5)") == 6
    assert interp.eval("(k1 10)") == 11


def test_dead_controller_is_invalid_controller(interp):
    assert issubclass(DeadControllerError, InvalidControllerError)


def test_controller_valid_while_process_active_deep_inside(interp):
    assert (
        interp.eval(
            """
            (spawn (lambda (c)
                     (define (deep n)
                       (if (= n 0) (c (lambda (k) 'escaped)) (deep (- n 1))))
                     (deep 100)))
            """
        ).name
        == "escaped"
    )


def test_error_message_names_the_controller(interp):
    with pytest.raises(DeadControllerError, match="root is not in the"):
        interp.eval("((spawn (lambda (c) c)) (lambda (k) k))")


# -- both environment representations ------------------------------------
#
# The validity rules are a property of the process tree, not of how
# variables are looked up; they must hold identically on the resolved
# machine (slot ribs, default) and the dict-chain ablation.


@pytest.fixture(params=["resolved", "dict"], ids=["resolved", "dict"])
def either_interp(request):
    from repro import Interpreter

    return Interpreter(engine=request.param)


def test_invalid_after_return_both_representations(either_interp):
    with pytest.raises(DeadControllerError):
        either_interp.eval(paper_examples.INVALID_AFTER_RETURN)


def test_invalid_after_use_both_representations(either_interp):
    with pytest.raises(DeadControllerError):
        either_interp.eval(paper_examples.INVALID_AFTER_USE)


def test_valid_after_reinstatement_both_representations(either_interp):
    source = paper_examples.VALID_AFTER_REINSTATEMENT.strip()
    assert either_interp.eval(f"({source} 42)") == 42


def test_spawn_escape_both_representations(either_interp):
    assert (
        either_interp.eval(
            "(spawn (lambda (c) (+ 1 (c (lambda (k) 'out)))))"
        ).name
        == "out"
    )
