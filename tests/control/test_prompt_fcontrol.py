"""Felleisen prompt/F — the delimited baseline of Section 3."""

import pytest

from repro.control.fcontrol import FunctionalContinuation
from repro.errors import PromptMissingError


def test_prompt_transparent_for_normal_values(interp):
    assert interp.eval("(prompt 42)") == 42
    assert interp.eval("(+ 1 (prompt (+ 2 3)))") == 6


def test_prompt_multi_expression_body(interp):
    assert interp.eval("(prompt 1 2 3)") == 3


def test_f_aborts_to_prompt(interp):
    assert interp.eval("(prompt (+ 10 (F (lambda (k) 0))))") == 0


def test_f_abort_leaves_prompt_in_place(interp):
    # After F aborts, the receiver's value falls through the prompt.
    assert interp.eval("(+ 1 (prompt (+ 10 (F (lambda (k) 100)))))") == 101


def test_f_captures_functional_continuation(interp):
    k = interp.eval("(prompt (+ 10 (F (lambda (k) k))))")
    assert isinstance(k, FunctionalContinuation)


def test_functional_continuation_composes(interp):
    # k = (+ 10 _); (k 5) = 15 — composed, not abortive.
    assert interp.eval("(prompt (+ 10 (F (lambda (k) (k 5)))))") == 15


def test_functional_continuation_composes_twice(interp):
    assert interp.eval("(prompt (+ 10 (F (lambda (k) (k (k 0))))))") == 20


def test_functional_continuation_multi_shot_outside(interp):
    interp.run("(define fk (prompt (* 3 (F (lambda (k) k)))))")
    assert interp.eval("(fk 2)") == 6
    assert interp.eval("(fk 10)") == 30
    assert interp.eval("(+ 1 (fk 5))") == 16  # composes with the caller


def test_no_reinstated_prompt(interp):
    """Per Felleisen, the functional continuation does not reinstall
    the prompt: an F inside a resumed continuation must not find one."""
    interp.run("(define fk (prompt (+ 1 (F (lambda (k) k)))))")
    with pytest.raises(PromptMissingError):
        interp.eval("(fk (F (lambda (k2) 0)))")


def test_f_without_prompt_raises(interp):
    with pytest.raises(PromptMissingError):
        interp.eval("(F (lambda (k) k))")


def test_prompts_shadow_nearest_wins(interp):
    """Section 3's core critique: F sees only the *last* prompt."""
    assert interp.eval("(prompt (+ 1 (prompt (+ 10 (F (lambda (k) 0))))))") == 1
    # The outer (+ 1 _) was NOT captured or aborted: only the inner
    # prompt delimits.  The receiver's 0 falls through the inner
    # prompt into (+ 1 _).


def test_prompt_shadowing_blocks_outer_control(interp):
    """There is no way for F to reach past an intervening prompt — the
    'captures too little' problem motivating spawn."""
    captured_size = interp.eval(
        """
        (prompt (* 2 (prompt (* 3 (F (lambda (k) (k 1)))))))
        """
    )
    # k = (* 3 _) only; (k 1) = 3, falls through inner prompt, then
    # outer (* 2 _) applies: 6.  If F could capture to the outer
    # prompt, k would have been (* 2 (* 3 _)).
    assert captured_size == 6


def test_f_under_nested_prompts_independent(interp):
    interp.run("(define fk (prompt (* 5 (F (lambda (k) k)))))")
    # Using fk under a fresh prompt: composition is local.
    assert interp.eval("(prompt (+ 1 (fk 2)))") == 11


def test_fcontrol_alias(interp):
    assert interp.eval("(prompt (fcontrol (lambda (k) 9)))") == 9


def test_spawn_as_prompt_generator(interp):
    """The paper: 'One can think of spawn as a version of # that
    creates a new F each time it is used.'  A controller reaches its
    own root even past an intervening prompt — which F cannot do."""
    assert (
        interp.eval(
            """
            (spawn (lambda (c)
                     (+ 1 (prompt (+ 10 (c (lambda (k) 0)))))))
            """
        )
        == 0
    )  # the controller aborts past the prompt to its root


def test_f_inside_spawn_respects_prompt_only(interp):
    """Dual: F under a spawn + prompt reaches only the prompt."""
    assert (
        interp.eval(
            """
            (spawn (lambda (c)
                     (+ 1 (prompt (+ 10 (F (lambda (k) 0)))))))
            """
        )
        == 1
    )


def test_f_captures_spawn_label_inside_region(interp):
    """If a spawn label sits between F's application and the prompt,
    it is captured as part of the functional continuation; resuming
    re-validates the controller inside."""
    assert (
        interp.eval(
            """
            (prompt
              (+ 1 (spawn (lambda (c)
                            (+ 10 (F (lambda (k) (k 0))))))))
            """
        )
        == 11
    )
