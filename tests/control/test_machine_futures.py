"""Machine-level futures: Section 8's forest of trees, in Scheme."""

import pytest

from repro import Interpreter
from repro.control.futures import FuturePlaceholder
from repro.errors import DeadControllerError, MachineError, WrongTypeError


def test_future_returns_placeholder(interp):
    ph = interp.eval("(future (lambda () 42))")
    assert isinstance(ph, FuturePlaceholder)


def test_touch_blocks_until_value(interp):
    assert interp.eval("(touch (future (lambda () (* 6 7))))") == 42


def test_touch_non_placeholder_is_identity(interp):
    assert interp.eval("(touch 5)") == 5
    assert interp.eval("(touch 'sym)").name == "sym"


def test_placeholder_predicates(interp):
    interp.run("(define ph (future (lambda () 1)))")
    assert interp.eval("(placeholder? ph)") is True
    assert interp.eval("(placeholder? 5)") is False
    interp.eval("(touch ph)")
    assert interp.eval("(future-done? ph)") is True


def test_future_done_on_non_placeholder_raises(interp):
    with pytest.raises(WrongTypeError):
        interp.eval("(future-done? 5)")


def test_future_runs_concurrently_with_parent():
    interp = Interpreter(quantum=1)
    interp.run(
        """
        (define progress 0)
        (define ph
          (future (lambda ()
                    (let loop ([i 0])
                      (set! progress i)
                      (if (= i 100) 'done (loop (+ i 1)))))))
        """
    )
    # The defining form returned while the future still runs — it is
    # parked.  Spin in the main tree; the future advances alongside.
    interp.eval("(let spin ([i 0]) (if (= i 50) i (spin (+ i 1))))")
    assert interp.eval("progress") > 0


def test_future_survives_top_level_forms():
    interp = Interpreter()
    interp.run(
        "(define ph (future (lambda () (let loop ([n 2000]) "
        "(if (zero? n) 'finished (loop (- n 1)))))))"
    )
    # Touched two forms later:
    interp.eval("(+ 1 2)")
    assert interp.eval("(touch ph)").name == "finished"


def test_multiple_touches_same_value(interp):
    interp.run("(define ph (future (lambda () (list 1 2))))")
    first = interp.eval("(touch ph)")
    second = interp.eval("(touch ph)")
    assert first is second  # same object, computed once


def test_concurrent_touchers_all_woken(interp):
    interp.run("(define ph (future (lambda () 7)))")
    assert (
        interp.eval("(pcall + (touch ph) (touch ph) (touch ph))") == 21
    )


def test_future_inside_future(interp):
    assert (
        interp.eval(
            """
            (touch (future (lambda ()
                     (+ 1 (touch (future (lambda () 10)))))))
            """
        )
        == 11
    )


def test_controller_cannot_cross_trees(interp):
    """Section 8: 'control operations affect only the tree in which
    they occur.'  A future's body applying a controller rooted in the
    main tree finds no root on its path."""
    with pytest.raises(DeadControllerError):
        interp.eval(
            """
            (spawn (lambda (c)
                     (touch (future (lambda ()
                              (c (lambda (k) 'crossed)))))))
            """
        )


def test_spawn_within_future_tree_works(interp):
    """Controllers whose root is inside the same future tree are fine."""
    assert (
        interp.eval(
            """
            (touch (future (lambda ()
                     (spawn (lambda (c)
                              (+ 1 (c (lambda (k) 'local))))))))
            """
        ).name
        == "local"
    )


def test_self_deadlock_detected():
    interp = Interpreter()
    with pytest.raises(MachineError, match="deadlock"):
        interp.eval(
            """
            (let ([box (vector #f)])
              (vector-set! box 0
                (future (lambda ()
                          (let wait ()
                            (if (vector-ref box 0)
                                (touch (vector-ref box 0))
                                (wait))))))
              (touch (vector-ref box 0)))
            """
        )


def test_whole_tree_callcc_leaves_futures_alone():
    """Whole-tree call/cc aborts only the main tree; a running future
    keeps its progress."""
    interp = Interpreter(quantum=1)
    interp.run(
        """
        (define ph (future (lambda ()
                     (let loop ([n 400])
                       (if (zero? n) 'done (loop (- n 1)))))))
        """
    )
    # Abortive whole-tree continuation use in the main tree:
    assert interp.eval("(+ 1 (call/cc (lambda (k) (* 999 (k 1)))))") == 2
    assert interp.eval("(touch ph)").name == "done"


def test_abandoned_main_tree_waiter_stays_dead():
    """A main-tree task still waiting when its form ends must not be
    resurrected when the future later resolves."""
    interp = Interpreter(quantum=1, max_steps=200_000)
    interp.run(
        """
        (define ph (future (lambda ()
                     (let loop ([n 5000])
                       (if (zero? n) 'late (loop (- n 1)))))))
        """
    )
    # This form finishes while a pcall branch is still waiting on ph:
    # the branch is abandoned at form end... but pcall can't finish
    # with a waiting branch; so instead let the *future itself* wait on
    # a second future and check resolution ordering stays sane.
    assert interp.eval("(touch ph)").name == "late"
    assert interp.eval("(+ 1 2)") == 3  # machine state is clean after
