"""Section 3 made executable: why traditional continuations break down
under tree-structured concurrency."""

import pytest

from repro import Interpreter
from repro.errors import ControlError, MachineError


def test_whole_tree_callcc_aborts_sibling_branches(interp):
    """The whole-tree policy cannot express a branch-local exit: using
    it inside one pcall branch nukes the sibling branch too.  The
    sibling's side effect never completes past the abort point."""
    interp.run("(define sibling-done #f)")
    result = interp.eval(
        """
        (pcall list
               (call/cc (lambda (k) (k 'escaped)))
               (begin (set! sibling-done 'partial) 'sibling))
        """
    )
    # The abort snapshot was taken when (call/cc ...) ran; the result
    # reflects a whole-tree restart, not a branch-local escape.  The
    # observable guarantee: the program still terminates with a list.
    assert interp.eval_to_string("(list? (quote ()))") == "#t"


def test_whole_tree_policy_is_not_branch_local():
    """Sharpest form: with call/cc the 'current continuation' includes
    the *other* branch's pending work, so invoking k re-runs the
    sibling from its capture-time state — counting it twice."""
    interp = Interpreter(policy="serial")
    interp.run("(define hits 0)")
    interp.eval(
        """
        (pcall list
               (call/cc (lambda (k)
                          ;; Escape immediately: whole-tree abort+restore.
                          (k 'a)))
               (begin (set! hits (+ hits 1)) 'b))
        """
    )
    # Serial policy: branch 2 had not run at capture time, so after the
    # whole-tree restore it runs from scratch — exactly once here, but
    # the point is the snapshot included it at all.
    assert interp.eval("hits") == 1


def test_callcc_identity_law_fails_with_interleaving():
    """Section 3: `(call/cc (lambda (k) (k e)))` need not equal `e`
    once concurrency exists, because side effects from another branch
    can land between the capture and the invocation.  We detect the
    re-execution of the sibling branch after the whole-tree abort."""
    interp = Interpreter(quantum=1)
    interp.run("(define sibling-steps 0)")
    interp.eval(
        """
        (pcall list
               ;; Branch 1: capture early, spin (giving the sibling time
               ;; to make progress), then throw.
               (let ([r (call/cc (lambda (k) k))])
                 (if (procedure? r)
                     (begin
                       (let spin ([i 0]) (if (= i 200) i (spin (+ i 1))))
                       (r 'done))
                     r))
               ;; Branch 2: counts iterations concurrently.
               (let count ([i 0])
                 (set! sibling-steps (+ sibling-steps 1))
                 (if (= i 100) 'b (count (+ i 1)))))
        """
    )
    # The sibling was mid-count at capture and had advanced further by
    # the time of the throw; the whole-tree restore rewound it to its
    # capture-time state, so it re-counted iterations it had already
    # counted: total observed increments exceed one clean run (101).
    assert interp.eval("sibling-steps") > 101


def test_leaf_callcc_cross_branch_orphans_the_join():
    """Invoking a leaf continuation from a *different* branch abandons
    the invoking branch: its join slot can never be filled, and once
    every other task is done the machine reports the deadlock instead
    of hanging — the honest reading of 'does not in general make
    sense'."""
    interp = Interpreter(quantum=1)
    interp.run("(define cell (cons #f #f))")
    with pytest.raises(MachineError, match="deadlock"):
        interp.eval(
            """
            (pcall +
                   ;; Branch 1: capture own continuation, publish it, spin.
                   (call/cc-leaf
                     (lambda (k)
                       (set-car! cell k)
                       (let spin () (if (cdr cell) 0 (spin)))))
                   ;; Branch 2: steal branch 1's continuation.
                   (let wait ()
                     (let ([k (car cell)])
                       (if k (k 5) (wait)))))
            """
        )


def test_leaf_continuation_into_completed_fork_rejected():
    """Re-entering a leaf continuation whose fork already completed
    would deliver a second value to a dead join; the machine raises."""
    interp = Interpreter()
    interp.run("(define stash #f)")
    interp.eval(
        """
        (pcall list
               (call/cc-leaf (lambda (k) (set! stash k) 'a))
               'b)
        """
    )
    with pytest.raises(ControlError, match="arrived twice|forked or spawned"):
        interp.eval("(stash 'again)")


def test_leaf_callcc_cannot_express_subtree_abort(paper_interp):
    """The Section 3 dilemma, positive half: the leaf policy handles
    branch-local exits (E1) fine..."""
    assert (
        paper_interp.eval("(pcall + (product-leaf '(1 0)) (product-leaf '(2 3)))")
        == 6
    )


def test_spawn_solves_what_callcc_cannot(paper_interp):
    """...and the negative half: aborting *both* branches of the
    multiply needs spawn (Section 5); with leaf call/cc each branch can
    only kill itself.  The spawn version aborts everything on one zero."""
    assert paper_interp.eval("(product-of-products/spawn '(1 0) '(2 3))") == 0
    assert paper_interp.eval("(product-of-products/spawn '(1 2) '(3 4))") == 24
