"""Process continuations: capture, composition, concurrency capture."""

import pytest

from repro import Interpreter
from repro.errors import MachineError


def test_capture_includes_pending_work(interp):
    # The captured subtree contains (* 2 _) inside the process.
    interp.run("(define k (spawn (lambda (c) (* 2 (c (lambda (k) k))))))")
    assert interp.eval("(k 21)") == 42


def test_capture_is_delimited(interp):
    # Work *outside* the spawn is NOT captured: (+ 100 _) around the
    # spawn runs only once even though k runs twice.
    interp.run(
        """
        (define k #f)
        (define first-result
          (+ 100 (spawn (lambda (c) (* 2 (c (lambda (kk) (set! k kk) 1)))))))
        """
    )
    assert interp.eval("first-result") == 101
    assert interp.eval("(k 3)") == 6  # no +100 here


def test_multi_shot_reinstatement(interp):
    interp.run("(define k (spawn (lambda (c) (+ 1 (c (lambda (k) k))))))")
    assert interp.eval("(k 0)") == 1
    assert interp.eval("(k 10)") == 11
    assert interp.eval("(k 100)") == 101


def test_values_already_computed_are_captured(interp):
    """Call-by-value: an argument evaluated *before* the capture is a
    value inside the captured frame, so later assignments to its source
    variable are invisible."""
    interp.run(
        """
        (define x 1)
        (define k (spawn (lambda (c) (+ x (c (lambda (k) k))))))
        """
    )
    assert interp.eval("(k 0)") == 1
    interp.run("(set! x 50)")
    assert interp.eval("(k 0)") == 1  # x was already read


def test_reinstatement_sees_current_store(interp):
    """The store is shared, not captured: a variable read *inside* the
    continuation (after the hole) sees the current value on every
    reinstatement."""
    interp.run(
        """
        (define x 1)
        (define k (spawn (lambda (c) (+ (c (lambda (k) k)) x))))
        """
    )
    assert interp.eval("(k 0)") == 1
    interp.run("(set! x 50)")
    assert interp.eval("(k 0)") == 50


def test_capture_subtree_with_running_sibling():
    """Capturing a subtree containing an active pcall suspends the
    sibling branch; reinstating resumes it.  The sibling's progress is
    preserved across the suspension."""
    interp = Interpreter(quantum=1)
    interp.run(
        """
        (define progress 0)
        (define k
          (spawn (lambda (c)
                   (pcall +
                          (c (lambda (kk) kk))  ; capture from branch 1
                          ;; branch 2 counts; suspended mid-count
                          (let loop ([i 0])
                            (set! progress i)
                            (if (= i 1000) i (loop (+ i 1))))))))
        """
    )
    suspended_at = interp.eval("progress")
    assert suspended_at < 1000  # suspended mid-flight
    # Reinstate: branch 1's hole receives 7; branch 2 resumes and
    # finishes; join computes 7 + 1000.
    assert interp.eval("(k 7)") == 1007
    assert interp.eval("progress") == 1000


def test_multi_shot_with_concurrency():
    """Each reinstatement clones join progress: running k twice redoes
    only the suspended branch's remaining work, independently."""
    interp = Interpreter(quantum=4)
    interp.run(
        """
        (define k
          (spawn (lambda (c)
                   (pcall list
                          (c (lambda (kk) kk))
                          'sibling))))
        """
    )
    assert interp.eval_to_string("(k 1)") == "(1 sibling)"
    assert interp.eval_to_string("(k 2)") == "(2 sibling)"


def test_dropping_continuation_abandons_subtree(interp):
    """If the receiver drops the continuation, the captured subtree
    (including its suspended branches) simply never runs again."""
    assert (
        interp.eval(
            """
            (spawn (lambda (c)
                     (pcall +
                            (c (lambda (kk) 'dropped))
                            (error "this branch must never finish"))))
            """
        ).name
        == "dropped"
    )


def test_controller_abort_cannot_deadlock(interp):
    """Structurally, a controller receiver always runs in the live
    context above the captured root, so pure controller use can never
    strand the halt path — even when receivers drop continuations and
    spawn again.  (Contrast with leaf call/cc, which can deadlock a
    join: see tests/control/test_callcc_concurrent.py.)"""
    assert (
        interp.eval(
            """
            (pcall +
                   1
                   (spawn (lambda (c)
                            (c (lambda (kk)
                                 (spawn (lambda (c2)
                                          (c2 (lambda (kk2) 10)))))))))
            """
        )
        == 11
    )


def test_capture_during_operator_branch(interp):
    """The operator position of pcall is a branch too: capture from it."""
    assert (
        interp.eval(
            """
            (spawn (lambda (c)
                     (pcall (c (lambda (kk) (lambda (a b) (list 'escaped a b))))
                            1 2)))
            """
        )
        is not None
    )


def test_process_continuation_repr(interp):
    k = interp.eval("(spawn (lambda (c) (c (lambda (k) k))))")
    assert "process-continuation" in repr(k)


def test_controller_repr(interp):
    c = interp.eval("(spawn (lambda (c) c))")
    assert "process-controller" in repr(c)
