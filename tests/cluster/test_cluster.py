"""The cluster tier: inline and multi-process serving, session
mobility (evict / rehydrate / migrate), worker-death recovery, and
``cluster.*`` metrics.

The multi-process tests are kept deliberately small (a handful of
requests each) so the suite stays fast; the snapshot codec underneath
has its own exhaustive matrix in ``tests/snapshot/``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.cluster import Cluster, DirectoryStore, MemoryStore
from repro.errors import ClusterError, ShardDied


# -- inline mode (workers=0, no multiprocessing) --------------------------


def test_inline_basic_serving():
    with Cluster(workers=0) as c:
        r = c.submit("s1", "(define (dbl n) (* 2 n)) (display (dbl 21))")
        assert r.ok
        assert r.output == "42"
        assert r.shard == 0
        # State persists across requests to the same session.
        assert c.submit("s1", "(dbl 100)").value == "200"


def test_inline_sessions_are_isolated():
    with Cluster(workers=0) as c:
        c.submit("alice", "(define secret 1)")
        r = c.submit("bob", "secret")
        assert not r.ok
        assert "secret" in (r.error or "")
        assert r.error_type == "UnboundVariableError"


def test_inline_error_in_band():
    with Cluster(workers=0) as c:
        r = c.submit("s", "(car 5)")
        assert r.status == "error"
        assert r.error_type == "WrongTypeError"
        # The session survives its own evaluation errors.
        assert c.submit("s", "(+ 1 2)").value == "3"


def test_inline_evict_and_rehydrate():
    with Cluster(workers=0) as c:
        c.submit("s", "(define x 7)")
        assert c.evict("s") is True
        assert c.evict("s") is False  # already out
        r = c.submit("s", "(* x 6)")  # rehydrated from the store
        assert r.value == "42"
        assert c.metrics.restores >= 1
        assert c.metrics.evictions == 1


def test_inline_store_roundtrip_through_directory(tmp_path):
    store = DirectoryStore(str(tmp_path))
    with Cluster(workers=0, store=store) as c:
        c.submit("durable", "(define n 99)")
    # A brand-new cluster over the same directory resumes the session.
    with Cluster(workers=0, store=DirectoryStore(str(tmp_path))) as c2:
        assert "durable" in c2.sessions()
        assert c2.submit("durable", "n").value == "99"


def test_session_defaults_apply():
    with Cluster(workers=0, session_defaults={"engine": "dict", "quantum": 7}) as c:
        c.submit("s", "(define ok 1)")
        session = c.shards[0].runtime.host["s"]
        assert session.engine == "dict"
        assert session.machine.quantum == 7


def test_closed_cluster_refuses():
    c = Cluster(workers=0)
    c.close()
    with pytest.raises(ClusterError):
        c.submit("s", "1")
    c.close()  # idempotent


def test_metrics_namespacing():
    with Cluster(workers=0) as c:
        c.submit("s", "(+ 1 1)")
        stats = c.stats
        assert stats["cluster.submits"] == 1
        assert stats["cluster.completed"] == 1
        assert stats["cluster.snapshots"] == 1
        assert stats["cluster.shards"] == 1
        hists = c.histograms()
        assert hists["cluster.snapshot_bytes"]["count"] == 1
        assert hists["cluster.request_us"]["count"] == 1


def test_cluster_obs_spans():
    from repro.obs import Recorder

    rec = Recorder()
    with Cluster(workers=0, record=rec) as c:
        c.submit("s", "(+ 1 1)")
    names = [e.name for e in rec.events]
    assert "cluster.submit" in names


# -- multi-process mode ---------------------------------------------------


@pytest.fixture
def mp_cluster():
    with Cluster(workers=2, session_defaults={"quantum": 64}) as c:
        yield c


def test_mp_serving_and_affinity(mp_cluster):
    c = mp_cluster
    r1 = c.submit("alice", "(define (f n) (+ n 1)) (f 1)")
    r2 = c.submit("bob", "(define g 5) g")
    assert r1.ok and r2.ok
    assert r1.shard == c.shard_for("alice")
    assert r2.shard == c.shard_for("bob")
    # Stickiness: the same session lands on the same shard.
    assert c.submit("alice", "(f 41)").value == "42"
    assert c.submit("alice", "(f 41)").shard == r1.shard


def test_mp_migration(mp_cluster):
    c = mp_cluster
    r = c.submit("mover", "(define x 10) x")
    source = r.shard
    target = (source + 1) % 2
    assert c.migrate("mover", target) == target
    after = c.submit("mover", "(* x 5)")
    assert after.value == "50"
    assert after.shard == target
    assert c.metrics.migrations == 1
    assert c.stats["cluster.restores"] >= 1


def test_mp_sigkill_recovery(mp_cluster):
    c = mp_cluster
    r = c.submit("victim", "(define treasure 777) treasure")
    pid = c.shards[r.shard].process.pid
    os.kill(pid, signal.SIGKILL)
    time.sleep(0.1)
    # The next submit detects the death, respawns the worker, and
    # replays the session's last snapshot — state intact.
    after = c.submit("victim", "treasure")
    assert after.ok
    assert after.value == "777"
    assert after.recovered is True
    assert c.metrics.recoveries == 1
    assert c.metrics.respawns == 1


def test_mp_sigkill_without_snapshot_raises():
    with Cluster(workers=1) as c:
        os.kill(c.shards[0].process.pid, signal.SIGKILL)
        time.sleep(0.1)
        # First-ever request for this session: nothing to replay.
        with pytest.raises(ShardDied):
            c.submit("newborn", "(+ 1 1)")
        # The worker was still respawned; the cluster keeps serving.
        assert c.submit("newborn", "(+ 1 1)").value == "2"


def test_close_force_resolves_wedged_inflight_handle():
    """``close()`` must leave no handle non-terminal: when the
    dispatcher's in-flight shard round-trip outlives ``join_timeout``,
    the handle is force-resolved CANCELLED instead of dangling."""
    from repro.errors import SessionCancelled
    from repro.host.handle import HandleState

    c = Cluster(workers=1)
    # Unbounded tail-recursive loop: the shard never replies.
    handle = c.submit_async("wedged", "(define (f) (f)) (f)")
    deadline = time.monotonic() + 10.0
    while handle.state is not HandleState.RUNNING:
        assert time.monotonic() < deadline, "request never dispatched"
        time.sleep(0.005)
    c.close(join_timeout=0.2)
    assert handle.done()
    assert handle.state is HandleState.CANCELLED
    with pytest.raises(SessionCancelled):
        handle.result()


def test_close_cancels_queued_handles():
    """Queued (never dispatched) handles also reach a terminal state."""
    from repro.host.handle import HandleState

    c = Cluster(workers=0)
    slow = c.submit_async(
        "busy", "(define (loop n) (if (= n 0) 0 (loop (- n 1)))) (loop 300000)"
    )
    queued = c.submit_async("later", "(+ 1 1)")
    c.close(join_timeout=5.0)
    assert queued.done()
    assert queued.state is HandleState.CANCELLED
    assert slow.done()  # finished or abandoned — terminal either way


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc fd accounting"
)
def test_respawn_does_not_leak_fds():
    """Each respawn replaces both queues (4 pipe FDs) and the process
    sentinel; without explicit closes the front leaks ~5 FDs per
    worker death.  50 respawns must leave the FD count flat."""
    with Cluster(workers=1) as c:
        shard = c.shards[0]
        shard.respawn()  # warm: first respawn may lazily create FDs
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(50):
            shard.respawn()
        after = len(os.listdir("/proc/self/fd"))
        assert after - before <= 4, f"FD leak: {before} -> {after}"
        # The shard still serves after all that churn.
        assert c.submit("s", "(+ 1 1)").value == "2"


def test_mp_suspended_state_migrates():
    """A session with cross-form machine state (a parked future)
    snapshots through the store and keeps it across a migration."""
    with Cluster(workers=2) as c:
        c.submit(
            "futurist",
            "(define (loop n) (if (= n 0) 64 (loop (- n 1))))"
            "(define f (future (lambda () (loop 2000))))",
        )
        source = c.shard_for("futurist")
        c.migrate("futurist", (source + 1) % 2)
        r = c.submit("futurist", "(touch f)")
        assert r.ok
        assert r.value == "64"
