"""Snapshot stores: mapping semantics, atomicity plumbing, filename
escaping."""

from __future__ import annotations

import os

from repro.cluster import DirectoryStore, MemoryStore


def exercise(store):
    assert store.get("a") is None
    store.put("a", b"blob-a")
    store.put("b", b"blob-b")
    assert store.get("a") == b"blob-a"
    assert store.ids() == ["a", "b"]
    store.put("a", b"blob-a2")  # overwrite
    assert store.get("a") == b"blob-a2"
    store.delete("a")
    assert store.get("a") is None
    store.delete("a")  # idempotent
    assert store.ids() == ["b"]


def test_memory_store():
    exercise(MemoryStore())


def test_directory_store(tmp_path):
    exercise(DirectoryStore(str(tmp_path / "snaps")))


def test_directory_store_persists_across_instances(tmp_path):
    path = str(tmp_path / "snaps")
    DirectoryStore(path).put("sess", b"payload")
    again = DirectoryStore(path)
    assert again.get("sess") == b"payload"
    assert again.ids() == ["sess"]


def test_directory_store_escapes_hostile_ids(tmp_path):
    store = DirectoryStore(str(tmp_path / "snaps"))
    hostile = "../../etc/passwd%sneaky"
    store.put(hostile, b"x")
    # Nothing escaped the store directory...
    assert not (tmp_path / "etc").exists()
    files = os.listdir(str(tmp_path / "snaps"))
    assert len(files) == 1
    # ...and the id round-trips exactly.
    assert store.ids() == [hostile]
    assert store.get(hostile) == b"x"


def test_directory_store_no_tmp_litter(tmp_path):
    path = str(tmp_path / "snaps")
    store = DirectoryStore(path)
    for i in range(5):
        store.put("s", b"v" * (i + 1))
    assert [f for f in os.listdir(path) if f.endswith(".tmp")] == []
