"""Char and MVector behaviour."""

import pytest

from repro.datum import Char, MVector
from repro.errors import SchemeError


def test_char_requires_single_codepoint():
    with pytest.raises(ValueError):
        Char("ab")
    with pytest.raises(ValueError):
        Char("")


def test_char_equality_and_hash():
    assert Char("a") == Char("a")
    assert Char("a") != Char("b")
    assert hash(Char("a")) == hash(Char("a"))
    assert Char("a") != "a"


def test_char_ordering():
    assert Char("a") < Char("b")
    assert Char("a") <= Char("a")


def test_vector_basic():
    v = MVector([1, 2, 3])
    assert len(v) == 3
    assert list(v) == [1, 2, 3]
    assert v.ref(1) == 2


def test_vector_set():
    v = MVector([1, 2])
    v.set(0, 9)
    assert v.ref(0) == 9


def test_vector_bounds():
    v = MVector([1])
    with pytest.raises(SchemeError):
        v.ref(1)
    with pytest.raises(SchemeError):
        v.ref(-1)
    with pytest.raises(SchemeError):
        v.set(5, 0)


def test_vector_filled():
    v = MVector.filled(3, "x")
    assert list(v) == ["x", "x", "x"]


def test_vector_filled_negative():
    with pytest.raises(SchemeError):
        MVector.filled(-1, 0)


def test_singletons():
    from repro.datum.singletons import EofObject, Unspecified, EOF_OBJECT, UNSPECIFIED

    assert Unspecified() is UNSPECIFIED
    assert EofObject() is EOF_OBJECT
    assert repr(EOF_OBJECT) == "#<eof>"
