"""Symbols: interning, gensyms, identity semantics."""

from repro.datum import Symbol, gensym, gensym_reset, intern


def test_intern_returns_same_object():
    assert intern("foo") is intern("foo")


def test_intern_distinct_spellings():
    assert intern("foo") is not intern("bar")


def test_interned_flag():
    assert intern("foo").interned
    assert not gensym().interned


def test_gensym_unique():
    assert gensym() is not gensym()


def test_gensym_never_collides_with_interned():
    g = gensym("foo")
    assert g is not intern(g.name)


def test_gensym_prefix_in_name():
    assert gensym("tmp").name.startswith("tmp")


def test_symbol_str_is_name():
    assert str(intern("hello")) == "hello"


def test_gensym_reset_restarts_counter_names():
    gensym_reset()
    first = gensym("a")
    gensym_reset()
    second = gensym("a")
    assert first.name == second.name
    assert first is not second


def test_symbol_repr_mentions_name():
    assert "hello" in repr(intern("hello"))
