"""eq? / eqv? / equal? semantics."""

from fractions import Fraction

from repro.datum import (
    NIL,
    Char,
    MVector,
    cons,
    from_pylist,
    intern,
    is_eq,
    is_eqv,
    is_equal,
)


def test_eq_symbols():
    assert is_eq(intern("a"), intern("a"))
    assert not is_eq(intern("a"), intern("b"))


def test_eq_small_ints():
    assert is_eq(5, 5)
    assert not is_eq(5, 6)


def test_eq_booleans_not_ints():
    # #t is not 1, despite Python's bool subclassing int.
    assert not is_eq(True, 1)
    assert not is_eq(False, 0)
    assert is_eq(True, True)


def test_eq_chars():
    assert is_eq(Char("a"), Char("a"))
    assert not is_eq(Char("a"), Char("b"))


def test_eq_pairs_identity():
    p = cons(1, 2)
    assert is_eq(p, p)
    assert not is_eq(p, cons(1, 2))


def test_eqv_exact_numbers():
    assert is_eqv(Fraction(1, 2), Fraction(2, 4))
    assert is_eqv(3, 3)


def test_eqv_exactness_distinguished():
    assert not is_eqv(1, 1.0)


def test_eqv_floats():
    assert is_eqv(1.5, 1.5)
    assert is_eqv(float("nan"), float("nan"))


def test_equal_structural_lists():
    a = from_pylist([1, from_pylist([2, 3]), "x"])
    b = from_pylist([1, from_pylist([2, 3]), "x"])
    assert is_equal(a, b)


def test_equal_different_lists():
    assert not is_equal(from_pylist([1, 2]), from_pylist([1, 3]))
    assert not is_equal(from_pylist([1, 2]), from_pylist([1, 2, 3]))


def test_equal_strings():
    assert is_equal("abc", "abc")
    assert not is_equal("abc", "abd")


def test_equal_vectors():
    assert is_equal(MVector([1, 2]), MVector([1, 2]))
    assert not is_equal(MVector([1, 2]), MVector([1, 2, 3]))


def test_equal_mixed_types_false():
    assert not is_equal(from_pylist([1]), MVector([1]))
    assert not is_equal("1", 1)


def test_equal_nil():
    assert is_equal(NIL, NIL)
    assert not is_equal(NIL, from_pylist([1]))


def test_equal_cyclic_terminates():
    a = cons(1, NIL)
    a.cdr = a
    b = cons(1, NIL)
    b.cdr = b
    # Unrollings agree; must terminate and say True.
    assert is_equal(a, b)


def test_equal_deep_list_no_recursion_error():
    deep_a = from_pylist(list(range(50_000)))
    deep_b = from_pylist(list(range(50_000)))
    assert is_equal(deep_a, deep_b)
