"""Pairs and list utilities."""

import pytest

from repro.datum import (
    NIL,
    Pair,
    cons,
    from_pylist,
    improper_to_pylist,
    is_list,
    list_length,
    scheme_append,
    scheme_reverse,
    to_pylist,
)
from repro.errors import WrongTypeError


def test_nil_singleton():
    from repro.datum.pairs import Nil

    assert Nil() is NIL


def test_nil_is_truthy():
    # Only #f is false in Scheme; NIL must not accidentally be falsy.
    assert bool(NIL)


def test_cons_car_cdr():
    p = cons(1, 2)
    assert p.car == 1 and p.cdr == 2


def test_from_to_pylist_roundtrip():
    items = [1, "two", cons(3, 4)]
    assert to_pylist(from_pylist(items)) == items


def test_from_pylist_empty():
    assert from_pylist([]) is NIL


def test_from_pylist_improper_tail():
    p = from_pylist([1], tail=2)
    assert p.car == 1 and p.cdr == 2


def test_to_pylist_rejects_improper():
    with pytest.raises(WrongTypeError):
        to_pylist(cons(1, 2))


def test_improper_to_pylist():
    prefix, tail = improper_to_pylist(from_pylist([1, 2], tail=3))
    assert prefix == [1, 2] and tail == 3


def test_improper_to_pylist_atom():
    prefix, tail = improper_to_pylist(42)
    assert prefix == [] and tail == 42


def test_list_length():
    assert list_length(from_pylist([1, 2, 3])) == 3
    assert list_length(NIL) == 0


def test_list_length_improper_raises():
    with pytest.raises(WrongTypeError):
        list_length(cons(1, 2))


def test_is_list_proper():
    assert is_list(NIL)
    assert is_list(from_pylist([1, 2, 3]))


def test_is_list_improper():
    assert not is_list(cons(1, 2))
    assert not is_list(42)


def test_is_list_cyclic_terminates():
    p = cons(1, NIL)
    p.cdr = p
    assert not is_list(p)


def test_pair_iteration():
    assert list(from_pylist([1, 2, 3])) == [1, 2, 3]


def test_pair_iteration_improper_raises():
    with pytest.raises(WrongTypeError):
        list(cons(1, 2))


def test_append_empty():
    assert scheme_append() is NIL


def test_append_lists():
    result = scheme_append(from_pylist([1]), from_pylist([2, 3]), from_pylist([4]))
    assert to_pylist(result) == [1, 2, 3, 4]


def test_append_last_may_be_atom():
    result = scheme_append(from_pylist([1]), 2)
    assert result.car == 1 and result.cdr == 2


def test_append_shares_last_list():
    tail = from_pylist([9])
    result = scheme_append(from_pylist([1]), tail)
    assert result.cdr is tail


def test_reverse():
    assert to_pylist(scheme_reverse(from_pylist([1, 2, 3]))) == [3, 2, 1]
    assert scheme_reverse(NIL) is NIL


def test_reverse_improper_raises():
    with pytest.raises(WrongTypeError):
        scheme_reverse(cons(1, 2))
