"""External representations (write and display)."""

from fractions import Fraction

from repro.datum import (
    NIL,
    Char,
    MVector,
    UNSPECIFIED,
    cons,
    from_pylist,
    intern,
    scheme_display,
    scheme_repr,
)


def test_atoms():
    assert scheme_repr(42) == "42"
    assert scheme_repr(True) == "#t"
    assert scheme_repr(False) == "#f"
    assert scheme_repr(intern("abc")) == "abc"
    assert scheme_repr(NIL) == "()"


def test_fraction():
    assert scheme_repr(Fraction(1, 3)) == "1/3"
    assert scheme_repr(Fraction(4, 2)) == "2"


def test_float_specials():
    assert scheme_repr(float("inf")) == "+inf.0"
    assert scheme_repr(float("-inf")) == "-inf.0"
    assert scheme_repr(float("nan")) == "+nan.0"


def test_string_write_vs_display():
    assert scheme_repr('a"b\n') == '"a\\"b\\n"'
    assert scheme_display('a"b\n') == 'a"b\n'


def test_char_write_vs_display():
    assert scheme_repr(Char("x")) == "#\\x"
    assert scheme_repr(Char(" ")) == "#\\space"
    assert scheme_repr(Char("\n")) == "#\\newline"
    assert scheme_display(Char("x")) == "x"


def test_proper_list():
    assert scheme_repr(from_pylist([1, 2, 3])) == "(1 2 3)"


def test_dotted_pair():
    assert scheme_repr(cons(1, 2)) == "(1 . 2)"
    assert scheme_repr(from_pylist([1, 2], tail=3)) == "(1 2 . 3)"


def test_nested():
    inner = from_pylist([2, 3])
    assert scheme_repr(from_pylist([1, inner])) == "(1 (2 3))"


def test_vector():
    assert scheme_repr(MVector([1, intern("a")])) == "#(1 a)"
    assert scheme_repr(MVector([])) == "#()"


def test_quote_sugar():
    quoted = from_pylist([intern("quote"), intern("x")])
    assert scheme_repr(quoted) == "'x"
    qq = from_pylist([intern("quasiquote"), from_pylist([intern("unquote"), intern("y")])])
    assert scheme_repr(qq) == "`,y"


def test_unspecified():
    assert scheme_repr(UNSPECIFIED) == "#<unspecified>"


def test_cyclic_list_renders():
    p = cons(1, NIL)
    p.cdr = p
    text = scheme_repr(p)
    assert "cycle" in text


def test_cyclic_vector_renders():
    v = MVector([1])
    v.items[0] = v
    assert "cycle" in scheme_repr(v)


def test_print_read_roundtrip():
    from repro.reader import read_one
    from repro.datum import is_equal

    original = from_pylist(
        [1, Fraction(1, 2), "s", Char("q"), MVector([intern("v")]), cons(1, 2)]
    )
    assert is_equal(read_one(scheme_repr(original)), original)
