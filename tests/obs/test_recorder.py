"""Recorder unit behaviour: the ring, spans, tracks, enable/disable."""

from __future__ import annotations

from repro.obs import Recorder


def test_emit_collects_events_oldest_first():
    rec = Recorder()
    rec.emit("a", "one", step=1)
    rec.emit("b", "two", step=2)
    assert [e.name for e in rec.events] == ["a", "b"]
    assert [e.detail for e in rec.events] == ["one", "two"]
    assert [e.step for e in rec.events] == [1, 2]
    assert all(e.phase == "i" for e in rec.events)


def test_ring_evicts_oldest_and_counts_drops():
    rec = Recorder(capacity=3)
    for i in range(10):
        rec.emit(f"e{i}")
    assert len(rec) == 3
    assert rec.dropped == 7
    assert [e.name for e in rec.events] == ["e7", "e8", "e9"]


def test_disabled_recorder_records_nothing():
    rec = Recorder(enabled=False)
    rec.emit("a")
    with rec.span("s"):
        rec.emit("b")
    rec.complete("x", 0.0, 1.0)
    assert len(rec) == 0


def test_enable_toggle_mid_stream():
    rec = Recorder()
    rec.emit("kept")
    rec.enabled = False
    rec.emit("dropped")
    rec.enabled = True
    rec.emit("kept-too")
    assert [e.name for e in rec.events] == ["kept", "kept-too"]


def test_span_nesting_assigns_parents():
    rec = Recorder()
    with rec.span("outer"):
        with rec.span("inner"):
            rec.emit("leaf")
    outer_b, inner_b, leaf, inner_e, outer_e = rec.events
    assert (outer_b.phase, outer_b.parent) == ("B", 0)
    assert (inner_b.phase, inner_b.parent) == ("B", outer_b.span)
    assert leaf.span == inner_b.span
    assert (inner_e.phase, inner_e.span) == ("E", inner_b.span)
    assert (outer_e.phase, outer_e.span) == ("E", outer_b.span)


def test_span_track_switch_restored():
    rec = Recorder()
    rec.emit("before")
    with rec.span("tick", track="host"):
        rec.emit("inside")
    rec.emit("after")
    before, _, inside, _, after = rec.events
    assert before.track == "main"
    assert inside.track == "host"
    assert after.track == "main"


def test_end_closes_nested_spans_innermost_first():
    rec = Recorder()
    outer = rec.begin("outer")
    rec.begin("inner")  # never explicitly ended
    rec.end(outer)
    ends = [e for e in rec.events if e.phase == "E"]
    assert [e.name for e in ends] == ["inner", "outer"]


def test_end_of_unknown_span_is_a_noop():
    rec = Recorder()
    rec.end(999)
    s = rec.begin("s")
    rec.end(s)
    rec.end(s)  # double-end: second is a no-op
    assert [e.phase for e in rec.events] == ["B", "E"]


def test_complete_records_duration_and_start():
    rec = Recorder()
    t = rec.clock()
    rec.complete("quantum", t, 0.002, "task 3", step=16)
    (event,) = rec.events
    assert event.phase == "X"
    assert event.ts == t
    assert event.dur == 0.002
    assert event.step == 16


def test_clear_drops_events_and_reset_dropped():
    rec = Recorder(capacity=2)
    for i in range(5):
        rec.emit(f"e{i}")
    rec.clear()
    assert len(rec) == 0
    assert rec.dropped == 0
    rec.emit("fresh")
    assert [e.name for e in rec.events] == ["fresh"]


def test_events_of_filters_by_name():
    rec = Recorder()
    rec.emit("capture")
    rec.emit("reinstate")
    rec.emit("capture")
    assert len(rec.events_of("capture")) == 2
    assert len(rec.events_of("reinstate")) == 1
