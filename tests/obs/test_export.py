"""Exporter behaviour: Chrome-trace conversion, schema validation,
orphan repair, text timeline."""

from __future__ import annotations

from repro.obs import Recorder, render_timeline, to_chrome_trace, validate_chrome_trace


def _recorded_tree() -> Recorder:
    rec = Recorder()
    with rec.span("host.tick", track="host"):
        with rec.span("session.pump", "s0", track="s0"):
            rec.emit("capture", "by task 3", step=12)
            rec.complete("quantum", rec.clock(), 0.0001, "task 3", step=16)
    return rec


def test_round_trip_validates():
    trace = to_chrome_trace(_recorded_tree())
    assert validate_chrome_trace(trace) == []


def test_empty_trace_validates():
    trace = to_chrome_trace([])
    assert trace["traceEvents"] == []
    assert validate_chrome_trace(trace) == []


def test_tracks_become_named_threads():
    trace = to_chrome_trace(_recorded_tree())
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert names == {"host", "s0"}
    tids = {e["tid"] for e in meta}
    assert len(tids) == len(meta)  # one tid per track


def test_phases_map_through():
    trace = to_chrome_trace(_recorded_tree())
    phases = [e["ph"] for e in trace["traceEvents"] if e["ph"] != "M"]
    assert phases.count("B") == 2
    assert phases.count("E") == 2
    assert phases.count("i") == 1
    assert phases.count("X") == 1


def test_orphan_end_from_ring_eviction_is_dropped():
    rec = Recorder(capacity=3)
    s = rec.begin("outer")
    for i in range(8):  # evicts the B
        rec.emit(f"e{i}")
    rec.end(s)
    assert rec.dropped > 0
    trace = to_chrome_trace(rec)
    assert validate_chrome_trace(trace) == []
    assert not any(e["ph"] == "E" for e in trace["traceEvents"])


def test_unclosed_span_is_auto_closed():
    rec = Recorder()
    rec.begin("never-closed")
    rec.emit("x")
    trace = to_chrome_trace(rec)
    assert validate_chrome_trace(trace) == []
    ends = [e for e in trace["traceEvents"] if e["ph"] == "E"]
    assert len(ends) == 1


def test_x_events_are_sorted_back_into_timeline_order():
    """A quantum's X event carries its start timestamp but lands in
    the ring after the instants emitted inside it; export must not
    produce non-monotonic ts."""
    rec = Recorder()
    with rec.span("pump"):
        t0 = rec.clock()
        rec.emit("capture")
        rec.complete("quantum", t0, rec.clock() - t0)
    assert validate_chrome_trace(to_chrome_trace(rec)) == []


def test_validator_rejects_broken_traces():
    bad_ts = {
        "traceEvents": [
            {"pid": 1, "tid": 1, "ph": "i", "name": "a", "ts": 10, "s": "t"},
            {"pid": 1, "tid": 1, "ph": "i", "name": "b", "ts": 5, "s": "t"},
        ]
    }
    assert any("ts" in p for p in validate_chrome_trace(bad_ts))

    unmatched_end = {
        "traceEvents": [{"pid": 1, "tid": 1, "ph": "E", "name": "x", "ts": 0}]
    }
    assert any("no open B" in p for p in validate_chrome_trace(unmatched_end))

    unclosed_begin = {
        "traceEvents": [{"pid": 1, "tid": 1, "ph": "B", "name": "x", "ts": 0}]
    }
    assert any("unclosed" in p for p in validate_chrome_trace(unclosed_begin))

    negative_dur = {
        "traceEvents": [{"pid": 1, "tid": 1, "ph": "X", "name": "x", "ts": 0, "dur": -1}]
    }
    assert any("dur" in p for p in validate_chrome_trace(negative_dur))

    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []


def test_timeline_renders_all_events_with_indentation():
    rec = _recorded_tree()
    text = render_timeline(rec)
    lines = text.splitlines()
    assert len(lines) == len(rec.events)
    assert any("▶ host.tick" in line for line in lines)
    assert any("◀ session.pump" in line for line in lines)
    assert any("· capture" in line for line in lines)
    assert any("■ quantum" in line for line in lines)
    assert render_timeline([]) == "(no events recorded)"
