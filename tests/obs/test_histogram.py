"""Log2 histogram unit behaviour."""

from __future__ import annotations

from repro.obs.histogram import BUCKETS, Histogram


def test_empty_histogram():
    h = Histogram()
    assert h.count == 0
    assert h.quantile(0.5) == 0
    assert h.mean == 0.0
    assert h.as_dict()["buckets"] == {}


def test_bucket_boundaries_are_powers_of_two():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 7, 8):
        h.observe(v)
    buckets = h.as_dict()["buckets"]
    # v=0 -> bucket "0"; v=1 -> "1"; v∈{2,3} -> "3"; v∈{4..7} -> "7";
    # v=8 -> "15".
    assert buckets == {"0": 1, "1": 1, "3": 2, "7": 2, "15": 1}


def test_summary_statistics():
    h = Histogram()
    for v in (5, 10, 20):
        h.observe(v)
    assert h.count == 3
    assert h.total == 35
    assert h.min == 5
    assert h.max == 20
    assert abs(h.mean - 35 / 3) < 1e-9


def test_quantiles_return_bucket_upper_bounds():
    h = Histogram()
    for _ in range(99):
        h.observe(10)  # bucket upper bound 15
    h.observe(1000)  # bucket upper bound 1023
    assert h.quantile(0.5) == 15
    assert h.quantile(0.99) == 15
    assert h.quantile(1.0) == 1023


def test_negative_values_clamp_to_zero_and_floats_truncate():
    h = Histogram()
    h.observe(-5)
    h.observe(2.9)
    assert h.min == 0
    assert h.max == 2
    assert h.as_dict()["buckets"] == {"0": 1, "3": 1}


def test_huge_values_clamp_to_last_bucket():
    h = Histogram()
    h.observe(1 << 200)
    assert h.counts[BUCKETS - 1] == 1
    assert h.quantile(0.5) == (1 << (BUCKETS - 1)) - 1


def test_merge_combines_counts_and_extremes():
    a, b = Histogram(), Histogram()
    a.observe(2)
    a.observe(100)
    b.observe(1)
    b.observe(5000)
    a.merge(b)
    assert a.count == 4
    assert a.min == 1
    assert a.max == 5000
    assert a.total == 2 + 100 + 1 + 5000
    empty = Histogram()
    a.merge(empty)  # merging an empty histogram changes nothing
    assert a.count == 4 and a.min == 1
