"""The observability layer end to end: machine → session → host.

The load-bearing invariant is *event conservation*: every unit of the
machine's capture/reinstate counters corresponds to exactly one
recorded event, across all three engines and all quanta, including
runs that abort mid-quantum.  The span-tree shape (host.tick →
session.pump → quantum → control events) and the export gates ride on
top.
"""

from __future__ import annotations

import pytest

from repro import Host, Interpreter
from repro.errors import StepBudgetExceeded
from repro.obs import Recorder, validate_chrome_trace

ENGINES = ["dict", "resolved", "compiled"]
QUANTA = [1, 16, 4096]

CHURN = """
(define (churn n)
  (if (= n 0)
      0
      (begin
        (spawn (lambda (c) (c (lambda (k) (k 1)))))
        (churn (- n 1)))))
"""


def _conservation(interp: Interpreter) -> tuple[int, int, int, int]:
    rec = interp.recorder
    return (
        interp.stats["captures"],
        len(rec.events_of("capture")),
        interp.stats["reinstatements"],
        len(rec.events_of("reinstate")),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("quantum", QUANTA)
def test_counted_equals_emitted_across_engines_and_quanta(engine, quantum):
    """The ISSUE acceptance criterion: counted == emitted for
    capture/reinstate at quantum ∈ {1, 16, 4096} on every engine."""
    interp = Interpreter(engine=engine, quantum=quantum, record=True)
    interp.load_paper_example("search-all")
    interp.run("(define t (list->tree '(5 2 8 1 3 7 9)))")
    interp.eval("(search-all t odd?)")
    captures, emitted_c, reinstates, emitted_r = _conservation(interp)
    assert captures > 0
    assert emitted_c == captures
    assert emitted_r == reinstates


@pytest.mark.parametrize("engine", ENGINES)
def test_conservation_survives_budget_abort(engine):
    """Events must not be lost when the evaluation aborts right after
    a control operation (the seed Tracer's loss mode)."""
    for budget in range(1, 40):
        interp = Interpreter(engine=engine, quantum=16, record=True)
        try:
            interp.eval("(spawn (lambda (c) (c (lambda (k) k))))", max_steps=budget)
        except StepBudgetExceeded:
            pass
        captures, emitted_c, reinstates, emitted_r = _conservation(interp)
        assert emitted_c == captures, f"budget={budget}"
        assert emitted_r == reinstates, f"budget={budget}"


def test_machine_record_accepts_shared_recorder():
    shared = Recorder()
    a = Interpreter(record=shared)
    b = Interpreter(record=shared)
    a.eval("(spawn (lambda (c) (c (lambda (k) (k 1)))))")
    b.eval("(spawn (lambda (c) (c (lambda (k) (k 1)))))")
    assert a.recorder is shared and b.recorder is shared
    assert len(shared.events_of("capture")) == 2


def test_record_false_and_default_mean_no_recorder():
    assert Interpreter().recorder is None
    assert Interpreter(record=False).recorder is None


def test_quantum_events_report_task_and_steps():
    interp = Interpreter(record=True, quantum=8)
    interp.eval("(+ 1 2)")
    quanta = interp.recorder.events_of("quantum")
    assert quanta, "expected at least one quantum X event"
    assert all(e.phase == "X" and e.dur >= 0 for e in quanta)
    assert all("task" in e.detail and "steps" in e.detail for e in quanta)


def test_host_span_tree_and_export():
    """host.tick → session.pump → quantum/control events, on separate
    tracks, exporting to a schema-valid Chrome trace."""
    host = Host(quantum=64, record=True)
    a = host.session("a", quantum=8)
    b = host.session("b", quantum=8)
    host.submit(a, "(spawn (lambda (c) (+ 1 (c (lambda (k) (k 41))))))")
    host.submit(b, "(+ 1 2)")
    host.run_until_idle()

    rec = host.recorder
    assert rec is a.recorder is b.recorder  # one shared stream
    names = {e.name for e in rec.events}
    assert {"host.tick", "session.pump", "quantum"} <= names
    assert {"capture", "reinstate"} <= names

    tick_b = next(e for e in rec.events if e.name == "host.tick" and e.phase == "B")
    pump_bs = [e for e in rec.events if e.name == "session.pump" and e.phase == "B"]
    assert tick_b.track == "host"
    assert {e.track for e in pump_bs} == {"a", "b"}
    assert all(e.parent == tick_b.span for e in pump_bs)  # pumps nest in the tick

    assert validate_chrome_trace(rec.to_chrome_trace()) == []


def test_session_brought_recorder_not_overridden_by_host():
    own = Recorder()
    host = Host(record=True)
    sess = host.session("own", record=own, prelude=False)
    assert sess.recorder is own
    other = host.session("inherits", prelude=False)
    assert other.recorder is host.recorder


def test_prelude_events_are_cleared():
    interp = Interpreter(record=True)  # prelude on
    assert len(interp.recorder) == 0
