"""Engines: bounded computation from suspension machinery."""

import pytest

from repro.errors import RuntimeAPIError
from repro.runtime import Call
from repro.runtime.engines import Engine, make_engine, round_robin


def worker(n):
    def body():
        total = 0
        for i in range(n):
            total += i
            yield Call(lambda: None)
        return total

    return body


def test_engine_completes_with_big_fuel():
    outcome = make_engine(worker(3)).run(10_000)
    assert outcome.done
    assert outcome.value == 3
    assert outcome.remaining_fuel > 0


def test_engine_expires_with_small_fuel():
    outcome = make_engine(worker(100)).run(5)
    assert not outcome.done
    assert isinstance(outcome.engine, Engine)


def test_engine_resumable_to_completion():
    outcome = make_engine(worker(50)).run(5)
    rounds = 1
    while not outcome.done:
        outcome = outcome.engine.run(5)
        rounds += 1
    assert outcome.value == sum(range(50))
    assert rounds > 1


def test_engine_mileage_monotonic():
    engine = make_engine(worker(50))
    outcome = engine.run(5)
    first = engine.mileage
    outcome.engine.run(5)
    assert engine.mileage > first


def test_completed_engine_cannot_rerun():
    engine = make_engine(worker(1))
    outcome = engine.run(10_000)
    assert outcome.done
    with pytest.raises(RuntimeAPIError, match="already completed"):
        engine.run(10)


def test_fuel_must_be_positive():
    with pytest.raises(RuntimeAPIError):
        make_engine(worker(1)).run(0)


def test_round_robin_fairness():
    engines = [make_engine(worker(n)) for n in (10, 20, 30)]
    values = round_robin(engines, fuel_each=7)
    assert values == [sum(range(10)), sum(range(20)), sum(range(30))]


def test_round_robin_single():
    assert round_robin([make_engine(worker(4))], fuel_each=100) == [6]


def test_round_robin_bounded():
    def forever():
        while True:
            yield Call(lambda: None)

    with pytest.raises(RuntimeAPIError, match="max_rounds"):
        round_robin([make_engine(forever)], fuel_each=1, max_rounds=10)


def test_engine_value_can_be_any_object():
    def body():
        return {"k": [1, 2]}
        yield  # pragma: no cover

    outcome = make_engine(body).run(100)
    assert outcome.done and outcome.value == {"k": [1, 2]}
