"""Coroutines from process continuations."""

import pytest

from repro.errors import RuntimeAPIError
from repro.runtime import Call, Coroutine


def test_basic_yield_sequence():
    def numbers(suspend):
        for n in range(3):
            yield suspend(n)
        return "end"

    co = Coroutine(numbers)
    results = [co.resume() for _ in range(4)]
    assert [r.done for r in results] == [False, False, False, True]
    assert [r.value for r in results] == [0, 1, 2, "end"]


def test_values_flow_both_ways():
    def echoer(suspend):
        got1 = yield suspend("ready")
        got2 = yield suspend(got1 * 2)
        return got2 + 1

    co = Coroutine(echoer)
    assert co.resume().value == "ready"
    assert co.resume(10).value == 20
    assert co.resume(100).value == 101


def test_resume_after_done_raises():
    def trivial(suspend):
        return "x"
        yield  # pragma: no cover

    co = Coroutine(trivial)
    assert co.resume().done
    with pytest.raises(RuntimeAPIError, match="already completed"):
        co.resume()


def test_coroutine_with_inner_calls():
    def fib_gen(suspend):
        def fib(n):
            if n < 2:
                return n
            a = yield Call(fib, n - 1)
            b = yield Call(fib, n - 2)
            return a + b

        for i in range(7):
            value = yield Call(fib, i)
            yield suspend(value)
        return "done"

    co = Coroutine(fib_gen)
    values = []
    result = co.resume()
    while not result.done:
        values.append(result.value)
        result = co.resume()
    assert values == [0, 1, 1, 2, 3, 5, 8]


def test_two_coroutines_independent():
    def counter(suspend):
        for i in range(3):
            yield suspend(i)
        return None

    a, b = Coroutine(counter), Coroutine(counter)
    assert a.resume().value == 0
    assert b.resume().value == 0
    assert a.resume().value == 1
    assert b.resume().value == 1


def test_samefringe():
    """The classic coroutine exercise: compare the fringes of two
    differently shaped trees lazily."""

    def fringe(tree):
        def walker(suspend):
            def walk(node):
                if isinstance(node, tuple):
                    for child in node:
                        yield Call(walk, child)
                else:
                    yield suspend(node)

            yield Call(walk, tree)
            return StopIteration

        return Coroutine(walker)

    def same_fringe(t1, t2):
        a, b = fringe(t1), fringe(t2)
        while True:
            ra, rb = a.resume(), b.resume()
            if ra.done or rb.done:
                return ra.done and rb.done
            if ra.value != rb.value:
                return False

    assert same_fringe(((1, 2), 3), (1, (2, 3)))
    assert same_fringe((1, (2, (3,))), ((1,), 2, 3))
    assert not same_fringe((1, 2), (2, 1))
    assert not same_fringe((1, 2), (1, 2, 3))
