"""Controllers and one-shot subcontinuations in the tasklet runtime."""

import pytest

from repro.errors import ContinuationReusedError, DeadControllerError
from repro.runtime import (
    Call,
    Invoke,
    Pcall,
    Resume,
    Runtime,
    Spawn,
    SubContinuation,
)


def run(fn, **kw):
    return Runtime(**kw).run(fn)


def test_invoke_abort():
    def main():
        def process(ctrl):
            yield Invoke(ctrl, lambda k: "aborted")
            return "unreachable"

        value = yield Spawn(process)
        return value

    assert run(main) == "aborted"


def test_invoke_receives_subcontinuation():
    seen = {}

    def main():
        def process(ctrl):
            def receiver(k):
                seen["k"] = k
                return "done"

            yield Invoke(ctrl, receiver)

        value = yield Spawn(process)
        return value

    assert run(main) == "done"
    assert isinstance(seen["k"], SubContinuation)


def test_resume_composes():
    def main():
        def process(ctrl):
            value = yield Invoke(ctrl, lambda k: ("paused", k))
            return value * 2

        tag, k = yield Spawn(process)
        assert tag == "paused"
        value = yield Resume(k, 21)
        return value

    assert run(main) == 42


def test_resume_is_one_shot():
    def main():
        def process(ctrl):
            value = yield Invoke(ctrl, lambda k: ("paused", k))
            return value

        _, k = yield Spawn(process)
        yield Resume(k, 1)
        yield Resume(k, 2)  # must raise

    with pytest.raises(ContinuationReusedError):
        run(main)


def test_dead_controller_after_return():
    def main():
        def process(ctrl):
            return ctrl
            yield  # pragma: no cover

        ctrl = yield Spawn(process)
        yield Invoke(ctrl, lambda k: "nope")

    with pytest.raises(DeadControllerError):
        run(main)


def test_dead_controller_after_use():
    def main():
        def process(ctrl):
            def receiver(k):
                def second_use():
                    yield Invoke(ctrl, lambda k2: "never")

                return second_use

            reuse = yield Invoke(ctrl, receiver)
            return reuse

        second_use = yield Spawn(process)
        value = yield Call(second_use)
        return value

    with pytest.raises(DeadControllerError):
        run(main)


def test_controller_valid_again_after_resume():
    def main():
        def process(ctrl):
            first = yield Invoke(ctrl, lambda k: ("first", k))
            # Resumed: the root is reinstated, so a second capture works.
            second = yield Invoke(ctrl, lambda k: ("second", k))
            return ("finished", first, second)

        tag1, k1 = yield Spawn(process)
        tag2, k2 = yield Resume(k1, "v1")
        final = yield Resume(k2, "v2")
        return (tag1, tag2, final)

    tag1, tag2, final = run(main)
    assert tag1 == "first"
    assert tag2 == "second"
    assert final == ("finished", "v1", "v2")


def test_capture_suspends_sibling_branch():
    progress = []

    def main():
        def process(ctrl):
            def capturer():
                value = yield Invoke(ctrl, lambda k: ("paused", k))
                return value

            def sibling():
                for i in range(1000):
                    progress.append(i)
                    yield Call(lambda: None)
                return "sib"

            value = yield Pcall(lambda a, b: (a, b), capturer, sibling)
            return value

        tag, k = yield Spawn(process)
        mid_progress = len(progress)
        value = yield Resume(k, "hole-value")
        return (mid_progress, value)

    mid_progress, value = Runtime(quantum=1).run(main)
    assert mid_progress < 1000  # sibling was suspended mid-flight
    assert value == ("hole-value", "sib")
    assert len(progress) == 1000  # resumed exactly, no re-execution


def test_nested_controllers_inner_outer():
    def main():
        def process_outer(outer):
            def process_inner(inner):
                # Abort through the *outer* controller.
                yield Invoke(outer, lambda k: "outer-abort")
                return "not-reached"

            value = yield Spawn(process_inner)
            return ("inner-returned", value)

        value = yield Spawn(process_outer)
        return value

    assert run(main) == "outer-abort"


def test_invoke_from_outside_subtree_invalid():
    def main():
        box = {}

        def process(ctrl):
            box["ctrl"] = ctrl
            yield Invoke(ctrl, lambda k: "out")

        yield Spawn(process)
        # The process is gone; its controller leaked via box.
        yield Invoke(box["ctrl"], lambda k: "bad")

    with pytest.raises(DeadControllerError):
        run(main)


def test_receiver_may_be_tasklet():
    def main():
        def process(ctrl):
            def receiver(k):
                yield Call(lambda: None)
                return "from-tasklet-receiver"

            yield Invoke(ctrl, receiver)

        value = yield Spawn(process)
        return value

    assert run(main) == "from-tasklet-receiver"


def test_resume_inside_resumed_extent():
    """Resume a subcontinuation, then from within the resumed process
    capture and resume again — chained suspensions."""

    def main():
        def process(ctrl):
            first = yield Invoke(ctrl, lambda k: ("p1", k))
            second = yield Invoke(ctrl, lambda k: ("p2", first, k))
            return ("end", second)

        tag1, k1 = yield Spawn(process)
        tag2, carried, k2 = yield Resume(k1, "A")
        final = yield Resume(k2, "B")
        return (tag1, tag2, carried, final)

    assert Runtime().run(main) == ("p1", "p2", "A", ("end", "B"))


def test_capture_composes_across_host_frames():
    """Resume deep inside a host call stack: the value flows back
    through every generator frame."""

    def main():
        def process(ctrl):
            got = yield Invoke(ctrl, lambda k: k)
            return got * 3

        k = yield Spawn(process)

        def deep(n):
            if n == 0:
                value = yield Resume(k, 7)
                return value
            value = yield Call(deep, n - 1)
            return value + 1

        value = yield Call(deep, 5)
        return value

    assert Runtime().run(main) == 7 * 3 + 5


def test_two_independent_captures_outstanding():
    """Two separate suspended processes held at once, resumed in the
    opposite order of their creation."""

    def main():
        def process(ctrl):
            got = yield Invoke(ctrl, lambda k: k)
            return got

        k1 = yield Spawn(process)
        k2 = yield Spawn(process)
        second = yield Resume(k2, "later-created")
        first = yield Resume(k1, "earlier-created")
        return (first, second)

    assert Runtime().run(main) == ("earlier-created", "later-created")


def test_subcontinuation_repr_changes_on_use():
    def main():
        def process(ctrl):
            got = yield Invoke(ctrl, lambda k: k)
            return got

        k = yield Spawn(process)
        assert "ready" in repr(k)
        yield Resume(k, 1)
        assert "used" in repr(k)
        return "checked"

    assert Runtime().run(main) == "checked"
