"""Multilisp-style futures: the Section 8 forest of trees."""

import pytest

from repro.errors import DeadControllerError, RuntimeAPIError
from repro.runtime import (
    Call,
    Invoke,
    MakeFuture,
    Placeholder,
    Runtime,
    Spawn,
    Touch,
)


def run(fn, **kw):
    return Runtime(**kw).run(fn)


def test_future_returns_placeholder_immediately():
    def main():
        def work():
            yield Call(lambda: None)
            return 9

        ph = yield MakeFuture(work)
        assert isinstance(ph, Placeholder)
        assert not ph.resolved  # not yet computed at creation
        value = yield Touch(ph)
        return value

    assert run(main) == 9


def test_future_runs_concurrently_with_parent():
    trace = []

    def main():
        def work():
            for _ in range(5):
                trace.append("future")
                yield Call(lambda: None)
            return "f"

        ph = yield MakeFuture(work)
        for _ in range(5):
            trace.append("main")
            yield Call(lambda: None)
        value = yield Touch(ph)
        return value

    assert Runtime(quantum=1).run(main) == "f"
    head = trace[:4]
    assert "future" in head and "main" in head


def test_touch_resolved_placeholder_is_immediate():
    def main():
        def work():
            return 1
            yield  # pragma: no cover

        ph = yield MakeFuture(work)
        first = yield Touch(ph)
        second = yield Touch(ph)  # already resolved
        return first + second

    assert run(main) == 2


def test_multiple_waiters_all_released():
    def main():
        def work():
            for _ in range(20):
                yield Call(lambda: None)
            return 7

        ph = yield MakeFuture(work)

        def waiter():
            value = yield Touch(ph)
            return value

        from repro.runtime import Pcall

        values = yield Pcall(lambda *vs: list(vs), waiter, waiter, waiter)
        return values

    assert run(main) == [7, 7, 7]


def test_future_args():
    def main():
        def work(a, b):
            yield Call(lambda: None)
            return a * b

        ph = yield MakeFuture(work, 6, 7)
        value = yield Touch(ph)
        return value

    assert run(main) == 42


def test_controller_cannot_cross_trees():
    """Section 8: control operations affect only the tree in which they
    occur.  A future's task walking up for a controller rooted in the
    main tree finds nothing."""

    def main():
        box = {}

        def process(ctrl):
            box["ctrl"] = ctrl

            def work():
                # Independent tree: the main tree's controller root is
                # not on this task's path.
                yield Invoke(box["ctrl"], lambda k: "cross")

            ph = yield MakeFuture(work)
            value = yield Touch(ph)
            return value

        value = yield Spawn(process)
        return value

    with pytest.raises(DeadControllerError):
        run(main)


def test_deadlock_on_self_touch():
    """A future that touches its own placeholder can never resolve:
    the runtime reports deadlock."""

    def main():
        box = {}

        def work():
            value = yield Touch(box["ph"])
            return value

        ph = yield MakeFuture(work)
        box["ph"] = ph
        # The future task is already blocked? No: it runs after box is
        # set because MakeFuture tasks start behind main in the queue.
        value = yield Touch(ph)
        return value

    with pytest.raises(RuntimeAPIError, match="deadlock"):
        run(main)
