"""Tasklet runtime core: calls, spawn, pcall, scheduling."""

import pytest

from repro.errors import RuntimeAPIError, StepBudgetExceeded
from repro.runtime import Call, Pcall, Runtime, Spawn


def run(fn, **kw):
    return Runtime(**kw).run(fn)


def test_plain_return():
    def main():
        return 42
        yield  # pragma: no cover - makes main a generator

    assert run(main) == 42


def test_call_plain_function():
    def main():
        value = yield Call(lambda a, b: a + b, 1, 2)
        return value

    assert run(main) == 3


def test_call_nested_tasklets():
    def inner(n):
        yield Call(lambda: None)
        return n * 2

    def middle(n):
        value = yield Call(inner, n)
        return value + 1

    def main():
        value = yield Call(middle, 10)
        return value

    assert run(main) == 21


def test_deep_call_chain():
    def countdown(n):
        if n == 0:
            return "bottom"
        value = yield Call(countdown, n - 1)
        return value

    def main():
        value = yield Call(countdown, 500)
        return value

    assert run(main) == "bottom"


def test_exception_propagates_through_frames():
    def boom():
        raise ValueError("inner boom")
        yield  # pragma: no cover

    def main():
        try:
            yield Call(boom)
        except ValueError as exc:
            return f"caught {exc}"

    assert run(main) == "caught inner boom"


def test_uncaught_exception_raises_from_run():
    def main():
        yield Call(lambda: 1 / 0)

    with pytest.raises(ZeroDivisionError):
        run(main)


def test_spawn_normal_return():
    def main():
        def process(ctrl):
            yield Call(lambda: None)
            return "process-value"

        value = yield Spawn(process)
        return value

    assert run(main) == "process-value"


def test_pcall_combines_in_order():
    def main():
        def branch(n):
            def body():
                for _ in range(n):
                    yield Call(lambda: None)
                return n

            return body

        value = yield Pcall(lambda *vs: list(vs), branch(5), branch(1), branch(3))
        return value

    assert run(main) == [5, 1, 3]


def test_pcall_zero_branches():
    def main():
        value = yield Pcall(lambda: "empty")
        return value

    assert run(main) == "empty"


def test_pcall_branches_interleave():
    progress: list[str] = []

    def main():
        def branch(tag):
            def body():
                for _ in range(5):
                    progress.append(tag)
                    yield Call(lambda: None)
                return tag

            return body

        yield Pcall(lambda *vs: vs, branch("a"), branch("b"))
        return None

    Runtime(quantum=1).run(main)
    head = progress[:6]
    assert "a" in head and "b" in head


def test_nested_pcall():
    def main():
        def leaf(n):
            def body():
                yield Call(lambda: None)
                return n

            return body

        def inner():
            value = yield Pcall(lambda a, b: a + b, leaf(1), leaf(2))
            return value

        value = yield Pcall(lambda a, b: a * b, inner, leaf(10))
        return value

    assert run(main) == 30


def test_yielding_non_effect_raises():
    def main():
        yield "not an effect"

    with pytest.raises(RuntimeAPIError, match="non-effect"):
        run(main)


def test_max_steps():
    def main():
        while True:
            yield Call(lambda: None)

    with pytest.raises(StepBudgetExceeded):
        Runtime(max_steps=100).run(main)


def test_step_counting_and_stats():
    def main():
        def process(ctrl):
            return "x"
            yield  # pragma: no cover

        yield Spawn(process)
        yield Pcall(lambda: None)
        return "done"

    runtime = Runtime()
    assert runtime.run(main) == "done"
    assert runtime.stats["spawns"] == 1
    assert runtime.stats["forks"] == 1
    assert runtime.steps > 0


def test_runtime_restartable():
    runtime = Runtime()

    def main_a():
        return "a"
        yield  # pragma: no cover

    def main_b():
        return "b"
        yield  # pragma: no cover

    assert runtime.run(main_a) == "a"
    assert runtime.run(main_b) == "b"
