"""Error paths in the tasklet runtime."""

import pytest

from repro.errors import RuntimeAPIError
from repro.runtime import Call, Invoke, Pcall, Resume, Runtime, Spawn


def run(fn, **kw):
    return Runtime(**kw).run(fn)


def test_exception_in_pcall_branch_aborts_run():
    def main():
        def good():
            yield Call(lambda: None)
            return 1

        def bad():
            yield Call(lambda: None)
            raise RuntimeError("branch exploded")

        yield Pcall(lambda a, b: a + b, good, bad)

    with pytest.raises(RuntimeError, match="branch exploded"):
        run(main)


def test_exception_in_spawned_process_propagates():
    def main():
        def process(ctrl):
            raise KeyError("inside process")
            yield  # pragma: no cover

        yield Spawn(process)

    with pytest.raises(KeyError):
        run(main)


def test_exception_in_combine_function():
    def main():
        def one():
            return 1
            yield  # pragma: no cover

        yield Pcall(lambda a: 1 / 0, one)

    with pytest.raises(ZeroDivisionError):
        run(main)


def test_exception_in_invoke_receiver():
    def main():
        def process(ctrl):
            yield Invoke(ctrl, lambda k: 1 / 0)

        yield Spawn(process)

    with pytest.raises(ZeroDivisionError):
        run(main)


def test_exception_catchable_across_spawn_boundary():
    """A process body's exception propagates into the parent's generator
    frame, where ordinary try/except applies."""

    def main():
        def process(ctrl):
            raise ValueError("deep")
            yield  # pragma: no cover

        try:
            yield Spawn(process)
        except ValueError as exc:
            return f"handled {exc}"

    assert run(main) == "handled deep"


def test_resume_with_foreign_object_rejected():
    def main():
        yield Resume("not a subcontinuation", 1)

    with pytest.raises(AttributeError):
        run(main)


def test_deadlock_reports_not_hangs():
    def main():
        from repro.runtime import Touch, Placeholder

        orphan = Placeholder()  # never resolved by anyone
        yield Touch(orphan)

    with pytest.raises(RuntimeAPIError, match="deadlock"):
        run(main)


def test_run_without_start_state_reset():
    runtime = Runtime()

    def boom():
        raise RuntimeError("x")
        yield  # pragma: no cover

    with pytest.raises(RuntimeError):
        runtime.run(boom)

    def fine():
        return "ok"
        yield  # pragma: no cover

    assert runtime.run(fine) == "ok"


def test_step_n_before_start_is_deadlock():
    runtime = Runtime()
    with pytest.raises(RuntimeAPIError):
        runtime.step_n(10)


def test_future_error_poisons_placeholder():
    """A raising future delivers its exception to every toucher."""

    def main():
        from repro.runtime import MakeFuture, Touch

        def work():
            yield Call(lambda: None)
            raise OSError("future failed")

        ph = yield MakeFuture(work)
        try:
            yield Touch(ph)
        except OSError as exc:
            return f"toucher saw: {exc}"

    assert run(main) == "toucher saw: future failed"


def test_future_error_poisons_late_touchers_too():
    def main():
        from repro.runtime import MakeFuture, Touch

        def work():
            raise OSError("late")
            yield  # pragma: no cover

        ph = yield MakeFuture(work)
        # Let the future die first.
        for _ in range(20):
            yield Call(lambda: None)
        try:
            yield Touch(ph)
        except OSError:
            return "late toucher saw it"

    assert run(main) == "late toucher saw it"


def test_error_in_branch_abandons_siblings():
    progress = []

    def main():
        def bad():
            yield Call(lambda: None)
            raise RuntimeError("die")

        def slow():
            for i in range(100_000):
                progress.append(i)
                yield Call(lambda: None)
            return "done"

        try:
            yield Pcall(lambda a, b: (a, b), bad, slow)
        except RuntimeError:
            return "caught"

    assert Runtime(quantum=1).run(main) == "caught"
    assert len(progress) < 100_000  # sibling was killed, not drained
