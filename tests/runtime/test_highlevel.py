"""Derived combinators: spawn_exit, first_true, parallel_map."""

from repro.runtime import Call, Runtime, first_true, parallel_map, spawn_exit


def run(fn, **kw):
    return Runtime(**kw).run(fn)


def test_spawn_exit_early():
    def main():
        def body(exit):
            yield exit("early")
            return "late"

        value = yield Call(spawn_exit, body)
        return value

    assert run(main) == "early"


def test_spawn_exit_normal():
    def main():
        def body(exit):
            yield Call(lambda: None)
            return "normal"

        value = yield Call(spawn_exit, body)
        return value

    assert run(main) == "normal"


def test_spawn_exit_from_deep_call():
    def main():
        def body(exit):
            def deep(n):
                if n == 0:
                    yield exit("from-depth")
                yield Call(deep, n - 1)

            yield Call(deep, 10)
            return "unreached"

        value = yield Call(spawn_exit, body)
        return value

    assert run(main) == "from-depth"


def test_nested_spawn_exit_levels():
    def main():
        def outer(exit_outer):
            def inner(exit_inner):
                yield exit_outer("outer-exit")

            value = yield Call(spawn_exit, inner)
            return ("inner-gave", value)

        value = yield Call(spawn_exit, outer)
        return value

    assert run(main) == "outer-exit"


def test_first_true_fast_wins():
    def main():
        def slow():
            for _ in range(200):
                yield Call(lambda: None)
            return "slow"

        def fast():
            yield Call(lambda: None)
            return "fast"

        value = yield Call(first_true, slow, fast)
        return value

    assert Runtime(quantum=1).run(main) == "fast"


def test_first_true_all_false():
    def main():
        def falsy():
            yield Call(lambda: None)
            return False

        value = yield Call(first_true, falsy, falsy)
        return value

    assert run(main) is False


def test_first_true_loser_abandoned():
    progress = []

    def main():
        def slow():
            for i in range(10_000):
                progress.append(i)
                yield Call(lambda: None)
            return "slow"

        def fast():
            return "fast"
            yield  # pragma: no cover

        value = yield Call(first_true, slow, fast)
        return value

    assert Runtime(quantum=1).run(main) == "fast"
    assert len(progress) < 10_000  # the slow branch never finished


def test_parallel_map_order_preserved():
    def main():
        def work(x):
            for _ in range(x):  # uneven work per item
                yield Call(lambda: None)
            return x * x

        values = yield Call(parallel_map, work, [5, 1, 4, 2])
        return values

    assert Runtime(quantum=1).run(main) == [25, 1, 16, 4]


def test_parallel_map_empty():
    def main():
        values = yield Call(parallel_map, lambda x: x, [])
        return values

    assert run(main) == []
