"""Differential matrix: every engine must agree with every other.

Runs the paper's example programs (E1–E10 territory: call/cc products,
spawn/exit, pcall trees, parallel-or, parallel search, futures,
engines) and the resolver's equivalence programs under all three
execution engines × all three scheduler policies, asserting identical
values — and, for schedule-deterministic programs, identical
``captures``/``reinstatements`` statistics.

The engines differ in how many machine steps a program costs (the
compiled engine fuses transitions), so under a fixed quantum the
*interleaving* of pcall branches can differ across engines.  Every
case below is written so its value is interleaving-independent; the
stats assertions additionally require that the number of continuation
captures is fixed by the program, not by the schedule.
"""

import pytest

from repro import Interpreter
from repro.machine.scheduler import ENGINES

POLICIES = ("round-robin", "random", "serial")


class Case:
    def __init__(self, id, expr, examples=(), setup=None, check_stats=True):
        self.id = id
        self.expr = expr
        self.examples = examples
        self.setup = setup
        self.check_stats = check_stats


CASES = [
    # E1/E2 — product via call/cc escape (one capture, zero or one
    # reinstatement depending on a zero being present).
    Case("e1-product-zero", "(product '(1 2 3 0 5))", examples=("product-callcc",)),
    Case("e1-product-nozero", "(product '(1 2 3 4))", examples=("product-callcc",)),
    # E3 — spawn: return without using the controller, escape, and
    # multi-shot reinstatement of a saved process continuation.
    Case("e3-spawn-return", "(spawn (lambda (c) 5))"),
    Case("e3-spawn-escape", "(+ 1 (spawn (lambda (c) (+ 2 (c (lambda (k) 10))))))"),
    Case(
        "e3-spawn-multi-shot",
        """
        (let ([saved #f])
          (let ([r (+ 1 (spawn (lambda (c)
                                 (c (lambda (k) (set! saved k) 0)))))])
            (list r (saved 10) (saved 20))))
        """,
    ),
    # E4 — sum of products: two spawn/exit branches under a pcall.
    Case(
        "e4-sum-of-products",
        "(sum-of-products '(2 3) '(4 5))",
        examples=("make-cell", "product0", "sum-of-products"),
    ),
    Case(
        "e4-sum-of-products-zero",
        "(sum-of-products '(2 0 3) '(4 5))",
        examples=("make-cell", "product0", "sum-of-products"),
    ),
    # E5/E6 — parallel-or with exactly one truthy branch: exactly one
    # exit fires regardless of schedule.
    Case(
        "e6-parallel-or",
        "(parallel-or #f 7)",
        examples=("make-cell", "first-true", "parallel-or"),
    ),
    # E7/E8 — parallel search over a tree with a single hit: the
    # result list is a singleton, so ordering cannot vary.
    Case(
        "e7-search-all-one-hit",
        "(search-all t (lambda (x) (= x 4)))",
        examples=("make-cell", "parallel-search", "search-all"),
        setup="(define t (list->tree '(1 3 4 5 7 9)))",
    ),
    # E9 — deep capture/reinstate through a tower of frames.
    Case(
        "e9-deep-capture",
        """
        (define (build n k)
          (if (= n 0) (call/cc k) (+ 1 (build (- n 1) k))))
        (+ (build 40 (lambda (k) 0)) 2)
        """,
    ),
    # E10 — futures and engines.
    Case("e10-future", "(let ([p (future (lambda () 42))]) (+ 1 (touch p)))"),
    Case(
        "e10-engine",
        """
        (let ([eng (make-engine (lambda () (* 6 7)))])
          (engine-run eng 100000
                      (lambda (value fuel) value)
                      (lambda (new-eng) 'ran-out)))
        """,
    ),
    # Control operators beyond the paper: prompt/F (functional
    # continuations) and mutation visible through a reinstated capture.
    Case("prompt-F", "(+ 1 (prompt (+ 10 (F (lambda (k) (k (k 100)))))))"),
    Case(
        "set-through-capture",
        """
        (define cell 0)
        (define k2 (call/cc (lambda (k) k)))
        (set! cell (+ cell 1))
        (if (< cell 2) (k2 k2) cell)
        """,
    ),
    # Racy by construction: both parallel-or branches are truthy, so
    # which one wins depends on the schedule.  Values still agree in
    # the sense that both engines produce *a* truthy branch — pin the
    # branches to the same value so the result is schedule-free, but
    # skip the stats check (the losing branch may or may not have
    # reached its exit when it is abandoned).
    Case(
        "e6-parallel-or-both-true",
        "(parallel-or 9 9)",
        examples=("make-cell", "first-true", "parallel-or"),
        check_stats=False,
    ),
]

# The resolver test suite's equivalence programs double as a binding /
# mutation / capture torture battery; run them through the full matrix
# too (values only — they are deterministic but cheap enough that the
# per-case stats design above already covers the interesting ones).
from tests.machine.test_resolver import EQUIV_PROGRAMS


def _run_case(engine, policy, case):
    interp = Interpreter(engine=engine, policy=policy, seed=7)
    for example in case.examples:
        interp.load_paper_example(example)
    if case.setup:
        interp.run(case.setup)
    value = interp.eval_to_string(case.expr)
    stats = interp.stats
    return value, stats["captures"], stats["reinstatements"]


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("case", CASES, ids=[c.id for c in CASES])
def test_engines_agree(case, policy):
    results = {engine: _run_case(engine, policy, case) for engine in ENGINES}
    values = {engine: r[0] for engine, r in results.items()}
    assert len(set(values.values())) == 1, values
    if case.check_stats:
        counts = {engine: r[1:] for engine, r in results.items()}
        assert len(set(counts.values())) == 1, counts


@pytest.mark.parametrize("policy", POLICIES)
def test_schedule_free_cases_agree_across_policies(policy):
    # For the schedule-deterministic cases, values must not depend on
    # the policy either — compare each policy's run against serial.
    for case in CASES:
        if not case.check_stats:
            continue
        value = _run_case("compiled", policy, case)[0]
        baseline = _run_case("compiled", "serial", case)[0]
        assert value == baseline, case.id


@pytest.mark.parametrize("source", EQUIV_PROGRAMS)
@pytest.mark.parametrize("policy", POLICIES)
def test_equivalence_programs_across_engines(source, policy):
    values = {
        engine: Interpreter(engine=engine, policy=policy, seed=3).eval_to_string(source)
        for engine in ENGINES
    }
    assert len(set(values.values())) == 1, values


# ---------------------------------------------------------------------------
# Batching equivalence: the quantum-batched run loops vs the unbatched
# per-step ablation driver.  Batching is an implementation detail of
# the run loop — for any quantum, a batched machine must produce the
# same value, the same total step count and the same capture stats as
# an unbatched one, because the scheduler rotates tasks at the same
# transition boundaries either way.
# ---------------------------------------------------------------------------

BATCH_QUANTA = (1, 2, 16, 4096)


def _run_case_counted(engine, policy, quantum, batched, case):
    interp = Interpreter(
        engine=engine, policy=policy, seed=7, quantum=quantum, batched=batched
    )
    for example in case.examples:
        interp.load_paper_example(example)
    if case.setup:
        interp.run(case.setup)
    value = interp.eval_to_string(case.expr)
    stats = interp.stats
    return (
        value,
        interp.machine.steps_total,
        stats["captures"],
        stats["reinstatements"],
    )


@pytest.mark.parametrize("quantum", BATCH_QUANTA)
@pytest.mark.parametrize("engine", ENGINES)
def test_batched_matches_stepped(engine, quantum):
    for case in CASES:
        if not case.check_stats:
            continue
        batched = _run_case_counted(engine, "round-robin", quantum, True, case)
        stepped = _run_case_counted(engine, "round-robin", quantum, False, case)
        assert batched == stepped, (case.id, batched, stepped)


# ---------------------------------------------------------------------------
# Analysis ablation axis: the capture/effect phase (repro.analysis.
# effects) stamps facts and grants enlarged quanta to proven
# single-task forms, but must be semantically invisible — identical
# values, total step counts and machine stats with analysis on or off,
# across engines × policies × quanta.  The dict engine ignores the
# flag (no resolved IR to analyze), so the axis covers the other two.
# ---------------------------------------------------------------------------

ANALYSIS_ENGINES = ("resolved", "compiled", "codegen")
ANALYSIS_QUANTA = (1, 16, 4096)


def _run_case_analysis(engine, policy, quantum, analysis, case):
    interp = Interpreter(
        engine=engine, policy=policy, seed=7, quantum=quantum, analysis=analysis
    )
    for example in case.examples:
        interp.load_paper_example(example)
    if case.setup:
        interp.run(case.setup)
    value = interp.eval_to_string(case.expr)
    return (value, interp.machine.steps_total, dict(interp.machine.stats))


@pytest.mark.parametrize("quantum", ANALYSIS_QUANTA)
@pytest.mark.parametrize("engine", ANALYSIS_ENGINES)
def test_analysis_ablation_no_divergence(engine, quantum):
    for case in CASES:
        if not case.check_stats:
            continue
        on = _run_case_analysis(engine, "round-robin", quantum, True, case)
        off = _run_case_analysis(engine, "round-robin", quantum, False, case)
        assert on == off, (case.id, on, off)


@pytest.mark.parametrize("policy", POLICIES)
def test_analysis_ablation_across_policies(policy):
    # The engine × quantum plane is covered above; this sweeps the
    # policy axis at the default quantum (grants only ever fire under
    # round-robin, but the off-path must be untouched everywhere).
    for case in CASES:
        if not case.check_stats:
            continue
        on = _run_case_analysis("compiled", policy, 16, True, case)
        off = _run_case_analysis("compiled", policy, 16, False, case)
        assert on == off, (case.id, on, off)


@pytest.mark.parametrize("source", EQUIV_PROGRAMS)
def test_equivalence_programs_analysis_ablation(source):
    for engine in ANALYSIS_ENGINES:
        runs = {
            analysis: Interpreter(
                engine=engine, policy="round-robin", seed=3, analysis=analysis
            ).eval_to_string(source)
            for analysis in (True, False)
        }
        assert runs[True] == runs[False], (engine, source)


@pytest.mark.parametrize("engine", ENGINES)
def test_batched_values_quantum_invariant(engine):
    # Schedule-deterministic cases must not observe the quantum at all:
    # identical values and capture stats at every batch size.
    for case in CASES:
        if not case.check_stats:
            continue
        runs = {
            quantum: _run_case_counted(engine, "round-robin", quantum, True, case)
            for quantum in BATCH_QUANTA
        }
        values = {q: r[0] for q, r in runs.items()}
        assert len(set(values.values())) == 1, (case.id, values)
        captures = {q: r[2:] for q, r in runs.items()}
        assert len(set(captures.values())) == 1, (case.id, captures)
