"""Stress tests: scale limits a downstream user will actually hit."""

import pytest

from repro import Interpreter


def test_deep_non_tail_recursion_100k(interp):
    interp.run("(define (count ls) (if (null? ls) 0 (+ 1 (count (cdr ls)))))")
    assert interp.eval("(count (iota 100000))") == 100000


def test_tail_loop_one_million(interp):
    assert (
        interp.eval("(let loop ([i 0]) (if (= i 1000000) i (loop (+ i 1))))")
        == 1_000_000
    )


def test_wide_pcall_500_branches(interp):
    branches = " ".join(str(i) for i in range(500))
    assert interp.eval(f"(pcall + {branches})") == sum(range(500))


def test_many_sequential_captures(interp):
    """10k capture/abort cycles: no leak of labels or tasks."""
    interp.run(
        """
        (define (exit-loop n)
          (if (zero? n)
              'done
              (begin
                (spawn (lambda (c) (+ 1 (c (lambda (k) 0)))))
                (exit-loop (- n 1)))))
        """
    )
    assert interp.eval("(exit-loop 10000)").name == "done"


def test_many_reinstatements_one_continuation(interp):
    interp.run("(define k (spawn (lambda (c) (+ 1 (c (lambda (kk) kk))))))")
    interp.run(
        """
        (define (drive n acc)
          (if (zero? n) acc (drive (- n 1) (+ acc (k 1)))))
        """
    )
    assert interp.eval("(drive 5000 0)") == 10000  # 5000 × (1+1)


def test_deeply_nested_spawn_chain(interp):
    interp.run(
        """
        (define (nest n)
          (if (zero? n) 'bottom (spawn (lambda (c) (nest (- n 1))))))
        """
    )
    assert interp.eval("(nest 2000)").name == "bottom"


def test_capture_through_deep_label_chain(interp):
    """Abort through 1000 intervening labels in one controller use."""
    interp.run(
        """
        (define (dig n c0)
          (if (zero? n)
              (c0 (lambda (k) 'surfaced))
              (spawn (lambda (ci) (dig (- n 1) c0)))))
        """
    )
    assert interp.eval("(spawn (lambda (c0) (dig 1000 c0)))").name == "surfaced"


def test_parallel_search_larger_tree():
    interp = Interpreter(quantum=32)
    interp.load_paper_example("search-all")

    def balanced(lo, hi):
        if lo > hi:
            return []
        mid = (lo + hi) // 2
        return [mid] + balanced(lo, mid - 1) + balanced(mid + 1, hi)

    order = " ".join(str(x) for x in balanced(1, 511))
    interp.run(f"(define t (list->tree '({order})))")
    assert interp.eval("(length (search-all t (lambda (x) (= 0 (modulo x 7)))))") == 73


def test_macro_expansion_depth(interp):
    """A recursive macro expanding hundreds of levels."""
    interp.run(
        """
        (extend-syntax (plus)
          [(plus) 0]
          [(plus a b ...) (+ a (plus b ...))])
        """
    )
    nums = " ".join("1" for _ in range(300))
    assert interp.eval(f"(plus {nums})") == 300


def test_huge_quoted_literal(interp):
    data = "(" + " ".join(str(i) for i in range(20_000)) + ")"
    assert interp.eval(f"(length '{data})") == 20_000


def test_long_output_capture(interp):
    interp.run("(define (emit n) (unless (zero? n) (display n) (emit (- n 1))))")
    interp.eval("(emit 5000)")
    assert len(interp.output_text()) > 10_000
