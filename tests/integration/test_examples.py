"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout  # every example narrates what it does


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "nonlocal_exit", "parallel_search"} <= names
    assert len(names) >= 3
