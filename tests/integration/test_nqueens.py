"""N-queens through the amb library — a substantial program exercising
backtracking with controller-based early exit."""

import pytest

from repro import Interpreter


@pytest.fixture
def queens_interp():
    interp = Interpreter()
    interp.load_library("amb")
    interp.run(
        """
        ;; A placement is a list of column indices, one per row.
        (define (safe? placement)
          (define (ok? col others dist)
            (cond
              [(null? others) #t]
              [(= col (car others)) #f]
              [(= (abs (- col (car others))) dist) #f]
              [else (ok? col (cdr others) (+ dist 1))]))
          (let loop ([ps placement])
            (cond
              [(null? ps) #t]
              [(ok? (car ps) (cdr ps) 1) (loop (cdr ps))]
              [else #f])))

        (define (queens n)
          (let ([cols (iota n)])
            (amb-solve (map (lambda (i) cols) cols) safe?)))

        (define (queens-all n)
          (let ([cols (iota n)])
            (amb-solve-all (map (lambda (i) cols) cols) safe?)))
        """
    )
    return interp


def as_list(interp, text):
    if text == "#f":
        return None
    return [int(x) for x in text.strip("()").split()]


def check_solution(placement):
    n = len(placement)
    for row_a in range(n):
        for row_b in range(row_a + 1, n):
            assert placement[row_a] != placement[row_b]
            assert abs(placement[row_a] - placement[row_b]) != row_b - row_a


def test_four_queens(queens_interp):
    text = queens_interp.eval_to_string("(queens 4)")
    solution = as_list(queens_interp, text)
    assert solution is not None and len(solution) == 4
    check_solution(solution)


def test_five_queens(queens_interp):
    solution = as_list(queens_interp, queens_interp.eval_to_string("(queens 5)"))
    assert solution is not None
    check_solution(solution)


def test_six_queens(queens_interp):
    solution = as_list(queens_interp, queens_interp.eval_to_string("(queens 6)"))
    assert solution is not None
    check_solution(solution)


def test_three_queens_impossible(queens_interp):
    assert queens_interp.eval("(queens 3)") is False
    assert queens_interp.eval("(queens 2)") is False


def test_four_queens_all_solutions(queens_interp):
    assert queens_interp.eval("(length (queens-all 4))") == 2


def test_five_queens_solution_count(queens_interp):
    assert queens_interp.eval("(length (queens-all 5))") == 10


def test_early_exit_saves_work(queens_interp):
    """The first-solution search stops early: it must cost a fraction
    of the all-solutions enumeration."""
    machine = queens_interp.machine
    before = machine.steps_total
    queens_interp.eval("(queens 5)")
    first_cost = machine.steps_total - before
    before = machine.steps_total
    queens_interp.eval("(queens-all 5)")
    all_cost = machine.steps_total - before
    assert first_cost < all_cost / 2
