"""The REPL and CLI."""

import io

import pytest

from repro.repl import Repl, main


@pytest.fixture
def repl():
    out = io.StringIO()
    return Repl(out=out), out


def feed(repl_pair, *lines):
    repl, out = repl_pair
    for line in lines:
        alive = repl.feed_line(line)
        if not alive:
            return out.getvalue(), False
    return out.getvalue(), True


def test_simple_evaluation(repl):
    text, _ = feed(repl, "(+ 1 2)")
    assert "3" in text


def test_multi_line_form_buffering(repl):
    instance, out = repl
    instance.feed_line("(let ([x 1]")
    assert instance.prompt() == "... "
    instance.feed_line("      [y 2])")
    instance.feed_line("  (+ x y))")
    assert "3" in out.getvalue()
    assert instance.prompt() == ">>> "


def test_string_with_parens_does_not_confuse_balance(repl):
    text, _ = feed(repl, '(string-length "(((")')
    assert "3" in text


def test_comment_with_parens(repl):
    text, _ = feed(repl, "(+ 1 2) ; unbalanced ((( in comment")
    assert "3" in text


def test_definition_prints_nothing(repl):
    text, _ = feed(repl, "(define x 5)")
    assert text.strip() == ""
    text, _ = feed(repl, "x")
    assert "5" in text


def test_display_output_shown(repl):
    text, _ = feed(repl, '(begin (display "hi") (newline) 42)')
    assert "hi" in text and "42" in text


def test_error_reported_not_fatal(repl):
    text, alive = feed(repl, "(car 5)", "(+ 1 1)")
    assert "error:" in text
    assert alive
    assert "2" in text


def test_meta_quit(repl):
    _, alive = feed(repl, ",quit")
    assert not alive


def test_meta_help(repl):
    text, _ = feed(repl, ",help")
    assert ",load" in text


def test_meta_examples(repl):
    text, _ = feed(repl, ",examples")
    assert "parallel-search" in text


def test_meta_load_and_use(repl):
    text, _ = feed(
        repl, ",load parallel-or", "(parallel-or #f 9)"
    )
    assert "loaded parallel-or" in text
    assert "9" in text


def test_meta_load_unknown(repl):
    text, _ = feed(repl, ",load bogus")
    assert "unknown example" in text


def test_meta_stats(repl):
    text, _ = feed(repl, "(pcall + 1 2)", ",stats")
    assert "forks" in text


def test_meta_trace(repl):
    text, _ = feed(repl, ",trace (spawn (lambda (c) (c (lambda (k) 1))))")
    assert "capture" in text


def test_meta_unknown(repl):
    text, _ = feed(repl, ",wat")
    assert "unknown command" in text


def test_spawn_through_repl(repl):
    text, _ = feed(repl, "(spawn (lambda (c) (+ 1 (c (lambda (k) 'out)))))")
    assert "out" in text


# -- the CLI ------------------------------------------------------------


def test_cli_eval(capsys):
    assert main(["-e", "(* 6 7)"]) == 0
    assert "42" in capsys.readouterr().out


def test_cli_examples(capsys):
    assert main(["--examples"]) == 0
    assert "spawn/exit" in capsys.readouterr().out


def test_cli_file(tmp_path, capsys):
    script = tmp_path / "prog.ss"
    script.write_text("(define (f x) (* x x)) (display (f 9)) (newline)")
    assert main([str(script)]) == 0
    assert "81" in capsys.readouterr().out


def test_cli_policy_and_seed(capsys):
    assert main(["--policy", "random", "--seed", "3", "-e", "(pcall + 1 2)"]) == 0
    assert "3" in capsys.readouterr().out


def test_cli_max_steps(capsys):
    assert main(["--max-steps", "100", "-e", "(let loop () (loop))"]) == 0
    assert "error" in capsys.readouterr().out


def test_cli_no_resolve(capsys):
    assert main(["--no-resolve", "-e", "(let ([x 6]) (* x 7))"]) == 0
    assert "42" in capsys.readouterr().out


def test_meta_stats_includes_resolver_counters(repl):
    text, _ = feed(repl, "(let ([x 1]) (+ x x))", ",stats")
    assert "resolver.locals" in text
    assert "resolver.cells_interned" in text


def test_meta_stats_no_resolver_rows_when_disabled():
    from repro import Interpreter

    out = io.StringIO()
    pair = (Repl(Interpreter(echo_output=False, engine="dict"), out=out), out)
    text, _ = feed(pair, "(+ 1 2)", ",stats")
    assert "forks" in text
    assert "resolver.locals" not in text


def test_meta_analyze(repl):
    text, _ = feed(repl, ",analyze (spawn (lambda (c) (c (lambda (k) 1))))")
    assert "confined" in text


def test_meta_analyze_usage(repl):
    text, _ = feed(repl, ",analyze")
    assert "usage" in text


def test_meta_codegen(repl):
    # Emitted Python for the form plus the ir-hash cache verdict.
    text, _ = feed(repl, ",codegen (+ 1 2)")
    assert "ir-hash" in text
    assert "def _f1(machine, task" in text
    assert "code cache" in text


def test_meta_codegen_resolves_against_live_session(repl):
    # Like ,analyze, the form is expanded and resolved against this
    # REPL's live globals and macros — a fresh definition is visible.
    text, _ = feed(
        repl,
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        ",codegen (fib 10)",
    )
    assert "cache" in text
    assert "_apply_deliver" in text  # the spill path is in the source


def test_meta_codegen_usage(repl):
    text, _ = feed(repl, ",codegen")
    assert "usage" in text


def test_meta_codegen_error(repl):
    text, _ = feed(repl, ",codegen (")
    assert "error" in text


def test_experiments_runner_module():
    """python -m repro.experiments must run clean (smoke: E3+E8 subset
    run in-process to keep the test fast)."""
    from repro.experiments import Report, e3, e8

    report = Report()
    e3(report)
    e8(report)
    assert not report.failures


def test_interpreter_load_file(tmp_path):
    from repro import Interpreter

    script = tmp_path / "lib.ss"
    script.write_text("(define (inc x) (+ x 1)) (inc 41)")
    interp = Interpreter()
    values = interp.load_file(str(script))
    assert values[-1] == 42
    assert interp.eval("(inc 1)") == 2


def test_selftest_scheme_file(capsys):
    """examples/selftest.ss — a Scheme-written test suite — passes
    through the CLI."""
    from pathlib import Path

    script = Path(__file__).parent.parent.parent / "examples" / "selftest.ss"
    assert main([str(script)]) == 0
    out = capsys.readouterr().out
    assert "checks passed" in out
    assert "FAILURES" not in out
