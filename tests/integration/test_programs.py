"""Larger programs exercising the whole stack: control abstractions the
paper says `spawn` subsumes, built in the embedded Scheme."""

import pytest

from repro import Interpreter


@pytest.fixture
def interp():
    return Interpreter()


class TestExceptionSystem:
    """An exception system with handlers, built on spawn (the paper's
    Section 1 motivation: 'exception handling facilities')."""

    SOURCE = """
    (define (with-handler handler thunk)
      (spawn (lambda (c)
               (define (raise-exn e)
                 (c (lambda (k) (handler e))))
               (thunk raise-exn))))
    """

    def test_no_exception(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval("(with-handler (lambda (e) 'handled) (lambda (raise) 42))")
            == 42
        )

    def test_exception_reaches_handler(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval_to_string(
                """
                (with-handler (lambda (e) (list 'caught e))
                              (lambda (raise) (+ 1 (raise 'oops))))
                """
            )
            == "(caught oops)"
        )

    def test_nested_handlers_inner_wins(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval_to_string(
                """
                (with-handler (lambda (e) (list 'outer e))
                  (lambda (raise-outer)
                    (with-handler (lambda (e) (list 'inner e))
                      (lambda (raise-inner)
                        (raise-inner 'boom)))))
                """
            )
            == "(inner boom)"
        )

    def test_inner_code_can_target_outer_handler(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval_to_string(
                """
                (with-handler (lambda (e) (list 'outer e))
                  (lambda (raise-outer)
                    (with-handler (lambda (e) (list 'inner e))
                      (lambda (raise-inner)
                        (raise-outer 'boom)))))
                """
            )
            == "(outer boom)"
        )

    def test_exception_propagates_out_of_pcall(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval_to_string(
                """
                (with-handler (lambda (e) (list 'caught e))
                  (lambda (raise)
                    (pcall + 1 (raise 'from-branch))))
                """
            )
            == "(caught from-branch)"
        )


class TestGenerators:
    """Lazy generators from process continuations."""

    SOURCE = """
    (define (make-generator producer)
      ;; Returns a thunk; each call yields the next value, or 'done.
      (define resume-point #f)
      (define (emit-to c v)
        (c (lambda (k) (set! resume-point k) v)))
      (lambda ()
        (if resume-point
            (resume-point 'ignored)
            (spawn (lambda (c)
                     (producer (lambda (v) (emit-to c v)))
                     'done)))))
    """

    def test_generator_produces_sequence(self, interp):
        interp.run(self.SOURCE)
        interp.run(
            """
            (define gen
              (make-generator
                (lambda (emit) (emit 1) (emit 2) (emit 3))))
            """
        )
        assert interp.eval("(gen)") == 1
        assert interp.eval("(gen)") == 2
        assert interp.eval("(gen)") == 3
        assert interp.eval("(gen)").name == "done"

    def test_generator_over_tree(self, interp):
        interp.run(self.SOURCE)
        interp.run(
            """
            (define (tree-gen tree)
              (make-generator
                (lambda (emit)
                  (let walk ([t tree])
                    (unless (empty? t)
                      (walk (left t))
                      (emit (node t))
                      (walk (right t)))))))
            (define g (tree-gen (list->tree '(4 2 6 1 3))))
            """
        )
        values = [interp.eval("(g)") for _ in range(5)]
        assert values == [1, 2, 3, 4, 6]


class TestBacktracking:
    """amb-style backtracking — McCarthy's operator, cited in the
    paper's Section 1 as a tree-structured concurrency example.  Here
    implemented depth-first with spawn providing the escape."""

    SOURCE = """
    (define (amb-solve choices-list pred?)
      ;; Try every combination of one element per choice list;
      ;; return the first (list ...) satisfying pred?, else #f.
      (spawn (lambda (c)
               (define (try chosen rest)
                 (if (null? rest)
                     (when (pred? (reverse chosen))
                       (c (lambda (k) (reverse chosen))))
                     (for-each
                       (lambda (choice) (try (cons choice chosen) (cdr rest)))
                       (car rest))))
               (try '() choices-list)
               #f)))
    """

    def test_finds_solution(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval_to_string(
                """
                (amb-solve (list '(1 2 3) '(4 5 6))
                           (lambda (xs) (= (+ (car xs) (cadr xs)) 8)))
                """
            )
            == "(2 6)"
        )

    def test_no_solution(self, interp):
        interp.run(self.SOURCE)
        assert (
            interp.eval(
                """
                (amb-solve (list '(1 2) '(1 2))
                           (lambda (xs) (= (+ (car xs) (cadr xs)) 100)))
                """
            )
            is False
        )

    def test_pythagorean_triple(self, interp):
        interp.run(self.SOURCE)
        result = interp.eval_to_string(
            """
            (let ([ns '(1 2 3 4 5 6 7 8 9 10 11 12 13)])
              (amb-solve (list ns ns ns)
                         (lambda (xs)
                           (let ([a (car xs)] [b (cadr xs)] [c (caddr xs)])
                             (and (< a b) (= (* c c) (+ (* a a) (* b b))))))))
            """
        )
        assert result == "(3 4 5)"


class TestDivideAndConquer:
    def test_parallel_mergesort(self, interp):
        interp.run(
            """
            (define (merge a b)
              (cond
                [(null? a) b]
                [(null? b) a]
                [(< (car a) (car b)) (cons (car a) (merge (cdr a) b))]
                [else (cons (car b) (merge a (cdr b)))]))
            (define (take ls n)
              (if (= n 0) '() (cons (car ls) (take (cdr ls) (- n 1)))))
            (define (psort ls)
              (let ([n (length ls)])
                (if (< n 2)
                    ls
                    (let ([half (quotient n 2)])
                      (pcall merge
                             (psort (take ls half))
                             (psort (list-tail ls half)))))))
            """
        )
        assert (
            interp.eval_to_string("(psort '(5 2 9 1 7 3 8 6 4))")
            == "(1 2 3 4 5 6 7 8 9)"
        )

    def test_parallel_fib(self, interp):
        interp.run(
            """
            (define (pfib n)
              (if (< n 2) n (pcall + (pfib (- n 1)) (pfib (- n 2)))))
            """
        )
        assert interp.eval("(pfib 12)") == 144


class TestTimedExit:
    def test_cooperative_timeout_via_spawn(self, interp):
        """A watchdog pattern: a pcall races work against a countdown;
        whichever finishes first exits the spawn."""
        interp.load_paper_example("spawn/exit")
        assert (
            interp.eval(
                """
                (spawn/exit
                  (lambda (exit)
                    (pcall (lambda (a b) a)
                           (let work ([i 0])
                             (if (= i 100000) (exit 'work-done) (work (+ i 1))))
                           (let tick ([i 0])
                             (if (= i 50) (exit 'timeout) (tick (+ i 1)))))))
                """
            ).name
            == "timeout"
        )


class TestContinuationQueues:
    """The frontier-of-paused-processes construction behind
    examples/breadth_first.py: traversal order is the driver's queue
    discipline over process continuations."""

    WALKER = """
    (define (make-walker t)
      (if (empty? t)
          #f
          (spawn (lambda (c)
                   (c (lambda (k) k))
                   (list (node t)
                         (make-walker (left t))
                         (make-walker (right t)))))))
    (define (kids r) (filter (lambda (x) x) (cdr r)))
    (define (traverse tree meld)
      (let loop ([frontier (let ([w (make-walker tree)]) (if w (list w) '()))]
                 [acc '()])
        (if (null? frontier)
            (reverse acc)
            (let ([r ((car frontier) 'go)])
              (loop (meld (cdr frontier) (kids r))
                    (cons (car r) acc))))))
    (define (bfs tree) (traverse tree (lambda (rest new) (append rest new))))
    (define (dfs tree) (traverse tree (lambda (rest new) (append new rest))))
    (define t (list->tree '(8 4 12 2 6 10 14 1 3 5 7 9 11 13 15)))
    """

    def test_fifo_is_level_order(self, interp):
        interp.run(self.WALKER)
        assert (
            interp.eval_to_string("(bfs t)")
            == "(8 4 12 2 6 10 14 1 3 5 7 9 11 13 15)"
        )

    def test_lifo_is_preorder(self, interp):
        interp.run(self.WALKER)
        assert (
            interp.eval_to_string("(dfs t)")
            == "(8 4 2 1 3 6 5 7 12 10 9 11 14 13 15)"
        )

    def test_empty_tree(self, interp):
        interp.run(self.WALKER)
        assert interp.eval_to_string("(bfs '())") == "()"

    def test_bounded_traversal_leaves_frontier_untouched(self, interp):
        interp.run(self.WALKER)
        interp.run(
            """
            (define (bfs-take tree n)
              (let loop ([frontier (let ([w (make-walker tree)])
                                     (if w (list w) '()))]
                         [n n] [acc '()])
                (if (or (zero? n) (null? frontier))
                    (reverse acc)
                    (let ([r ((car frontier) 'go)])
                      (loop (append (cdr frontier) (kids r))
                            (- n 1)
                            (cons (car r) acc))))))
            """
        )
        assert interp.eval_to_string("(bfs-take t 3)") == "(8 4 12)"
