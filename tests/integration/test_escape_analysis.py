"""Controller escape analysis (the Section 8 analyzability claim)."""

import pytest

from repro.analysis import analyze_source, spawn_report
from repro.lib import paper_examples


def one(source):
    sites = analyze_source(source)
    assert len(sites) == 1
    return sites[0]


def test_unused_controller():
    site = one("(spawn (lambda (c) 42))")
    assert site.classification == "unused"
    assert site.is_safe()


def test_confined_direct_abort():
    site = one("(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))")
    assert site.classification == "confined"
    assert site.direct_uses == 1
    assert site.is_safe()


def test_confined_multiple_direct_uses():
    site = one(
        """
        (spawn (lambda (c)
                 (if (< 1 2)
                     (c (lambda (k) 1))
                     (c (lambda (k) 2)))))
        """
    )
    assert site.classification == "confined"
    assert site.direct_uses == 2


def test_escaping_returned_controller():
    site = one("(spawn (lambda (c) c))")
    assert site.classification == "escaping"
    assert not site.is_safe()


def test_escaping_controller_as_argument():
    site = one("(spawn (lambda (c) (list c)))")
    assert site.classification == "escaping"


def test_escaping_via_set():
    site = one(
        """
        (begin
          (define box #f)
          (spawn (lambda (c) (set! box c) 1)))
        """
    )
    assert site.classification == "escaping"


def test_captured_in_nested_lambda():
    site = one("(spawn (lambda (c) ((lambda (x) (c (lambda (k) x))) 5)))")
    assert site.classification == "captured"
    assert site.captured_uses == 1


def test_shadowing_stops_tracking():
    site = one("(spawn (lambda (c) ((lambda (c) (c 1)) (lambda (x) x))))")
    assert site.classification == "unused"


def test_opaque_spawn_of_variable():
    site = one("(spawn some-procedure)")
    assert site.classification == "opaque"
    assert site.controller is None


def test_nested_spawns_reported_separately():
    sites = analyze_source(
        """
        (spawn (lambda (outer)
                 (spawn (lambda (inner)
                          (inner (lambda (k) 1))))))
        """
    )
    assert len(sites) == 2
    by_name = {s.controller: s for s in sites}
    assert by_name["outer"].classification == "unused"
    assert by_name["inner"].classification == "confined"


def test_use_of_outer_controller_in_inner_spawn_is_captured():
    sites = analyze_source(
        """
        (spawn (lambda (outer)
                 (spawn (lambda (inner)
                          (outer (lambda (k) 1))))))
        """
    )
    by_name = {s.controller: s for s in sites}
    # The inner spawned procedure is a nested lambda w.r.t. outer.
    assert by_name["outer"].classification == "captured"


class TestPaperExamples:
    """The classifications tell the Section 5 story: each derived
    abstraction restricts controller access through a closure."""

    def test_spawn_exit_is_captured(self):
        sites = analyze_source(paper_examples.SPAWN_EXIT)
        (site,) = sites
        # The controller is applied inside the restricted `exit`
        # closure that is handed to unknown code — access escapes, but
        # only through the abort-only wrapper.
        assert site.classification == "captured"

    def test_parallel_search_is_captured(self):
        sites = analyze_source(paper_examples.PARALLEL_SEARCH)
        (site,) = sites
        assert site.classification == "captured"

    def test_invalid_after_return_example_is_escaping(self):
        sites = analyze_source("(spawn (lambda (c) c))")
        assert sites[0].classification == "escaping"

    def test_first_true_inner_shape(self):
        # first-true calls spawn/exit (a variable) — opaque at this
        # syntactic level: the analysis is honest about indirection.
        sites = analyze_source("(spawn/exit (lambda (exit) (exit 1)))")
        assert sites == []  # spawn/exit is not literally `spawn`


def test_report_format():
    report = spawn_report(
        "(begin (spawn (lambda (c) (c (lambda (k) 1)))) (spawn (lambda (d) d)))"
    )
    assert "confined" in report and "escaping" in report
    assert "controller c" in report and "controller d" in report


def test_report_no_sites():
    assert spawn_report("(+ 1 2)") == "no spawn sites"


# ---------------------------------------------------------------------------
# Regressions: the analysis used to miss two whole node families.
# ---------------------------------------------------------------------------


class TestPcallSites:
    """``(pcall spawn proc)`` forks the evaluations but still ends in a
    spawn application — it is a spawn site and must be classified."""

    def test_pcall_spawn_is_a_site(self):
        site = one("(pcall spawn (lambda (c) (c (lambda (k) 1))))")
        assert site.classification == "confined"

    def test_pcall_spawn_escaping(self):
        site = one("(pcall spawn (lambda (c) c))")
        assert site.classification == "escaping"

    def test_pcall_other_operator_is_not_a_site(self):
        assert analyze_source("(pcall + 1 2)") == []

    def test_spawn_nested_under_pcall_arm_found(self):
        site = one("(pcall + (spawn (lambda (c) 7)) 1)")
        assert site.classification == "unused"


def resolved_sites(source):
    """Expand + resolve ``source`` against a fresh session's globals,
    then analyze the *resolved* trees (LocalRef/GlobalRef dialect)."""
    from repro.expander import ExpandEnv, expand_program
    from repro.host.session import Session
    from repro.ir.resolve import resolve_program
    from repro.reader import read_all

    from repro.analysis import analyze_spawns

    sess = Session(engine="resolved", prelude=False)
    env = ExpandEnv()
    env.macros.update(sess.expand_env.macros)
    nodes = expand_program(read_all(source), env)
    return analyze_spawns(resolve_program(nodes, sess.globals))


class TestResolvedDialect:
    """The resolver rewrites Var into LocalRef/GlobalRef; the analysis
    tracks the controller by slot address (depth, 0) instead of name."""

    def test_confined(self):
        (site,) = resolved_sites("(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))")
        assert site.classification == "confined"
        assert site.direct_uses == 1

    def test_escaping_value_use(self):
        (site,) = resolved_sites("(spawn (lambda (c) c))")
        assert site.classification == "escaping"

    def test_captured_in_nested_lambda(self):
        (site,) = resolved_sites("(spawn (lambda (c) (lambda () (c (lambda (k) 1)))))")
        assert site.classification == "captured"

    def test_zero_slot_nested_lambda_keeps_address(self):
        # A no-argument inner lambda allocates no rib, so it does not
        # shift the controller's depth — but it is still a nested
        # abstraction: the use is captured, not direct.
        (site,) = resolved_sites("(spawn (lambda (c) (lambda () (c 'x))))")
        assert site.classification == "captured"

    def test_shadowing_by_address(self):
        # Rebinding c in an inner lambda lives in its own rib; exact
        # addressing keeps the outer controller distinct.
        (site,) = resolved_sites(
            "(spawn (lambda (c) ((lambda (c) (c 1)) (lambda (x) x))))"
        )
        assert site.classification == "unused"

    def test_local_set_noted(self):
        (site,) = resolved_sites("(spawn (lambda (c) (set! c 5)))")
        assert any("reassigned" in n for n in site.notes)

    def test_pcall_spawn_resolved(self):
        (site,) = resolved_sites("(pcall spawn (lambda (c) (c (lambda (k) 1))))")
        assert site.classification == "confined"

    def test_agreement_with_unresolved(self):
        programs = [
            "(spawn (lambda (c) 42))",
            "(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))",
            "(spawn (lambda (c) c))",
            "(spawn (lambda (c) (list c)))",
            "(spawn (lambda (c) ((lambda (x) (c (lambda (k) x))) 5)))",
            "(spawn (lambda (outer) (spawn (lambda (inner) (outer (lambda (k) 1))))))",
        ]
        for source in programs:
            unresolved = [s.classification for s in analyze_source(source)]
            resolved = [s.classification for s in resolved_sites(source)]
            assert unresolved == resolved, source
