"""docs/LANGUAGE.md must not drift from the implementation: every
procedure name it lists exists, and the loadable libraries define what
it says they define."""

from pathlib import Path

import pytest

from repro import Interpreter
from repro.datum import intern

DOC = Path(__file__).parent.parent.parent / "docs" / "LANGUAGE.md"

PRIMITIVES_LISTED = """
+ - * / = < > <= >= quotient remainder modulo abs min max gcd lcm expt
sqrt floor ceiling truncate round exact->inexact inexact->exact
number->string string->number zero? positive? negative? odd? even?
add1 sub1 1+ 1-
cons car cdr set-car! set-cdr! list length append reverse list-tail
list-ref memq memv member assq assv assoc list->vector vector->list
last-pair iota caar cadr cdar cddr caaar caadr cadar caddr cdaar cdadr
cddar cdddr
pair? null? list? symbol? number? integer? rational? real? exact?
inexact? string? char? vector? boolean? procedure? not eq? eqv? equal?
string-length string-ref substring string-append string->symbol
symbol->string string->list list->string string string=? string<?
string>? string<=? string>=? char=? char<? char>? char<=? char>=?
char->integer integer->char char-upcase char-downcase char-alphabetic?
char-numeric? char-whitespace? gensym
make-vector vector vector-length vector-ref vector-set! vector-fill!
vector-copy
apply display write newline error void
spawn call/cc call-with-current-continuation call/cc-leaf F fcontrol
call-with-prompt future touch placeholder? future-done?
make-engine engine-run engine? engine-mileage
""".split()

PRELUDE_LISTED = """
map for-each filter fold-left fold-right reduce remove list-copy
list-index count andmap ormap empty? make-tree leaf node left right
tree-insert list->tree tree-size tree->list make-promise force compose
identity constantly
""".split()

LIBRARY_EXPORTS = {
    "exceptions": ["with-handler", "guard-else"],
    "generators": ["make-generator", "generator->list", "tree-generator"],
    "coroutines": [
        "make-coroutine",
        "resume",
        "coroutine-yielded?",
        "coroutine-done?",
        "coroutine-value",
    ],
    "parallel": ["par-map", "race"],
    "amb": ["amb-solve", "amb-solve-all"],
    "engines-util": ["with-timeout", "run-engines-fairly", "first-to-finish"],
}


def test_doc_exists():
    assert DOC.exists()
    text = DOC.read_text()
    assert "pcall" in text and "spawn" in text


def test_every_listed_primitive_exists():
    interp = Interpreter()
    missing = [
        name
        for name in PRIMITIVES_LISTED
        if intern(name) not in interp.globals
    ]
    assert not missing, f"documented but missing: {missing}"


def test_every_listed_prelude_binding_exists():
    interp = Interpreter()
    missing = [
        name for name in PRELUDE_LISTED if intern(name) not in interp.globals
    ]
    assert not missing, f"documented but missing from prelude: {missing}"


@pytest.mark.parametrize("library", sorted(LIBRARY_EXPORTS))
def test_library_exports_exist(library):
    interp = Interpreter()
    interp.load_library(library)
    for name in LIBRARY_EXPORTS[library]:
        assert intern(name) in interp.globals, f"{library} should define {name}"


def test_parallel_and_macro_exists():
    interp = Interpreter()
    interp.load_library("parallel")
    assert interp.eval("(parallel-and 1 2)") == 2  # macro, so eval-test


def test_every_paper_example_name_in_doc():
    from repro.lib import paper_examples

    text = DOC.read_text()
    for name, (_, kind) in paper_examples.ALL.items():
        if kind == "definitions":
            assert name in text, f"paper example {name} missing from LANGUAGE.md"
