"""Scheduler policies, quanta and machine lifecycle."""

import pytest

from repro import Interpreter
from repro.errors import MachineError
from repro.machine.scheduler import Machine, SchedulerPolicy


def test_policy_accepts_strings_and_enum():
    assert Machine(policy="round-robin").policy is SchedulerPolicy.ROUND_ROBIN
    assert Machine(policy="random").policy is SchedulerPolicy.RANDOM
    assert Machine(policy="serial").policy is SchedulerPolicy.SERIAL
    assert Machine(policy=SchedulerPolicy.SERIAL).policy is SchedulerPolicy.SERIAL


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        Machine(policy="bogus")


def test_quantum_minimum_is_one():
    assert Machine(quantum=0).quantum == 1
    assert Machine(quantum=-5).quantum == 1


@pytest.mark.parametrize("quantum", [1, 2, 7, 64])
def test_quantum_does_not_change_results(quantum):
    interp = Interpreter(quantum=quantum)
    interp.load_paper_example("sum-of-products")
    assert interp.eval("(sum-of-products '(2 3) '(4 5))") == 26


def test_random_policy_reproducible_with_seed():
    def run(seed):
        interp = Interpreter(policy="random", seed=seed, quantum=1)
        interp.run("(define order '())")
        interp.eval(
            "(pcall (lambda (a b) 0)"
            " (set! order (cons 'a order))"
            " (set! order (cons 'b order)))"
        )
        return interp.eval_to_string("order")

    assert run(42) == run(42)  # deterministic given the seed


def test_serial_policy_depth_first_order():
    interp = Interpreter(policy="serial")
    interp.run("(define order '())")
    interp.eval(
        """
        (pcall (lambda (a b c) 0)
               (set! order (cons 1 order))
               (set! order (cons 2 order))
               (set! order (cons 3 order)))
        """
    )
    # Serial policy runs branches to completion in creation order.
    assert interp.eval_to_string("order") == "(3 2 1)"


def test_steps_total_accumulates_across_forms():
    interp = Interpreter()
    base = interp.machine.steps_total
    interp.eval("(+ 1 2)")
    mid = interp.machine.steps_total
    interp.eval("(+ 3 4)")
    assert interp.machine.steps_total > mid > base


def test_stats_survive_across_forms(interp):
    interp.eval("(pcall + 1 2)")
    interp.eval("(pcall + 3 4)")
    assert interp.stats["forks"] == 2


def test_fresh_tree_per_form(interp):
    """Each top-level form starts from a clean root; leftovers from a
    previous form's abandoned branches never leak in."""
    interp.load_paper_example("parallel-or")
    interp.eval("(parallel-or 1 (let loop () (loop)))")  # loser abandoned
    # Next form runs normally despite the abandoned spinner.
    assert interp.eval("(* 2 21)") == 42


def test_machine_reusable_after_error(interp):
    from repro.errors import SchemeError

    with pytest.raises(SchemeError):
        interp.eval('(error "bang")')
    assert interp.eval("(+ 1 1)") == 2


def test_machine_reusable_after_deadlock():
    interp = Interpreter(quantum=1)
    interp.run("(define cell (cons #f #f))")
    with pytest.raises(MachineError):
        interp.eval(
            """
            (pcall +
                   (call/cc-leaf (lambda (k)
                     (set-car! cell k)
                     (let spin () (if (cdr cell) 0 (spin)))))
                   (let wait ()
                     (let ([k (car cell)]) (if k (k 5) (wait)))))
            """
        )
    assert interp.eval("(+ 2 2)") == 4


def test_trace_hook_sees_every_step():
    interp = Interpreter()
    hits = {"n": 0}

    def hook(machine, task):
        hits["n"] += 1

    interp.machine.trace_hook = hook
    before = interp.machine.steps_total
    interp.eval("(+ 1 (+ 2 3))")
    assert hits["n"] == interp.machine.steps_total - before


def test_tasks_created_stat(interp):
    before = interp.stats["tasks_created"]
    interp.eval("(pcall + 1 2 3)")
    # Root task + 4 branches (operator + 3 args) + join successor = 6.
    assert interp.stats["tasks_created"] - before == 6


def test_spawn_task_counts_enqueue_does_not():
    # spawn_task is the creation-accounting path; enqueue is pure
    # queueing (requeues after a quantum, parked-task wakeups) and must
    # not touch the counter.
    from repro.machine.task import VALUE, Task

    machine = Machine()
    task = Task((VALUE, 1), machine.toplevel_env, None, None)
    before = machine.stats["tasks_created"]
    machine.enqueue(task)
    machine.enqueue(task)
    assert machine.stats["tasks_created"] == before
    machine.spawn_task(Task((VALUE, 2), machine.toplevel_env, None, None))
    assert machine.stats["tasks_created"] == before + 1


def test_parked_future_requeue_not_counted_as_created():
    # A future that outlives its top-level form is parked and
    # re-enqueued at the next form's _install_root; that requeue must
    # not inflate tasks_created (only genuinely new tasks count).
    interp = Interpreter()
    interp.run(
        """
        (define p (future (lambda ()
          (let loop ([n 20000]) (if (= n 0) 'done (loop (- n 1)))))))
        """
    )
    before = interp.stats["tasks_created"]
    # One new root task; the parked future task is requeued, not created.
    interp.eval("1")
    assert interp.stats["tasks_created"] - before == 1


def test_random_pick_compacts_dead_entries():
    # RANDOM _pick must drop dead/suspended entries the first time it
    # scans past them instead of rescanning them on every pick.
    from repro.machine.task import VALUE, Task, TaskState

    machine = Machine(policy="random", seed=0)
    alive = [Task((VALUE, i), machine.toplevel_env, None, None) for i in range(3)]
    dead = [Task((VALUE, i), machine.toplevel_env, None, None) for i in range(4)]
    for task in dead:
        task.state = TaskState.DEAD
    for task in alive + dead:
        machine.enqueue(task)
    picked = machine._pick()
    assert picked in alive
    assert len(machine.queue) == 2
    assert all(task.state is TaskState.RUNNABLE for task in machine.queue)
