"""Proper tail calls: loops run in constant segment space."""

from repro import Interpreter
from repro.machine.frames import frame_chain_length


def test_self_tail_call_constant_space(interp):
    # A tail-recursive loop of 100k iterations must not grow frames.
    interp.run(
        "(define (loop i) (if (= i 100000) 'done (loop (+ i 1))))"
    )
    assert interp.eval("(loop 0)").name == "done"


def test_mutual_tail_calls(interp):
    interp.run(
        """
        (define (ping n) (if (= n 0) 'ping (pong (- n 1))))
        (define (pong n) (if (= n 0) 'pong (ping (- n 1))))
        """
    )
    assert interp.eval("(ping 50001)").name == "pong"


def test_named_let_tail_loop(interp):
    assert (
        interp.eval("(let loop ([i 0] [acc 0]) (if (= i 50000) acc (loop (+ i 1) (+ acc 1))))")
        == 50000
    )


def test_frame_depth_stays_bounded_in_tail_loop():
    """Instrument the machine: record the maximum frame-chain length
    during a tail loop and assert it stays below a small constant."""
    interp = Interpreter()
    max_depth = 0

    def hook(machine, task):
        nonlocal max_depth
        depth = frame_chain_length(task.frames)
        if depth > max_depth:
            max_depth = depth

    interp.machine.trace_hook = hook
    interp.run("(define (loop i) (if (= i 2000) i (loop (+ i 1))))")
    interp.eval("(loop 0)")
    assert max_depth < 10


def test_non_tail_recursion_grows_frames():
    """Control for the previous test: non-tail recursion must grow."""
    interp = Interpreter()
    max_depth = 0

    def hook(machine, task):
        nonlocal max_depth
        depth = frame_chain_length(task.frames)
        if depth > max_depth:
            max_depth = depth

    interp.machine.trace_hook = hook
    interp.run("(define (count i) (if (= i 200) 0 (+ 1 (count (+ i 1)))))")
    interp.eval("(count 0)")
    assert max_depth > 100


def test_deep_mutual_recursion_under_slot_ribs():
    """Regression for the resolved representation: mutual tail calls at
    depth 1e5 must neither blow the frame chain nor allocate ribs that
    keep each other alive.  The frame-depth bound is asserted live via
    the trace hook, so a silently-growing segment cannot pass."""
    interp = Interpreter()
    max_depth = 0

    def hook(machine, task):
        nonlocal max_depth
        depth = frame_chain_length(task.frames)
        if depth > max_depth:
            max_depth = depth

    interp.run(
        """
        (define (even? n) (if (= n 0) #t (odd? (- n 1))))
        (define (odd? n) (if (= n 0) #f (even? (- n 1))))
        """
    )
    interp.machine.trace_hook = hook
    assert interp.eval("(even? 100000)") is True
    assert interp.eval("(odd? 100001)") is True
    assert max_depth < 10


def test_deep_mutual_recursion_dict_baseline():
    """The same loop must also hold on the dict-engine ablation."""
    interp = Interpreter(engine="dict")
    interp.run(
        """
        (define (even? n) (if (= n 0) #t (odd? (- n 1))))
        (define (odd? n) (if (= n 0) #f (even? (- n 1))))
        """
    )
    assert interp.eval("(even? 100000)") is True


def test_tail_call_through_and_or(interp):
    interp.run("(define (loopa i) (and #t (if (= i 30000) 'ok (loopa (+ i 1)))))")
    assert interp.eval("(loopa 0)").name == "ok"
