"""The codegen engine (repro.ir.codegen) — engine #4.

Four layers of coverage:

* per-construct differential against the compiled engine (same values
  on every node kind, rest args, closures, deep recursion, delegation
  through capture / spawn / pcall / futures);
* the code cache — ir-hash keyed hits and misses, the source
  verification that makes analysis-fact changes safe, LRU eviction at
  capacity, ``clear_cache``;
* the emitted artifact itself — thunk contract (``.node`` / ``.triv``),
  emitted-source smoke, dialect rejection, the self-call inline guard
  falling through on rebinding;
* fallback paths — non-primitive operators in inline position, arity
  errors, unbound globals, all with the compiled engine's error timing.
"""

import pytest

from repro import Interpreter
from repro.datum import intern
from repro.errors import ArityError, CompileError, UnboundVariableError
from repro.expander import ExpandEnv, expand_program
from repro.host.session import Session
from repro.ir import resolve_program, stable_hash
from repro.ir.codegen import (
    _CACHE_CAPACITY,
    CodegenStats,
    cache_info,
    clear_cache,
    codegen_node,
    codegen_program,
    emitted_source,
    is_cached,
)
from repro.reader import read_all


def _codegen(**kwargs):
    return Interpreter(engine="codegen", **kwargs)


def _resolved_nodes(source, globals_env):
    nodes = expand_program(read_all(source), ExpandEnv())
    return resolve_program(nodes, globals_env)


# -- per-construct differential against the compiled engine ------------

DIFFERENTIAL_PROGRAMS = [
    "42",
    "'sym",
    '"text"',
    "(let ([x 5]) x)",
    "(let ([x 5]) (let ([y 2]) (+ x y)))",
    "(let ([a 1]) (let ([b 2]) (let ([c 3]) (+ a (+ b c)))))",
    "(define g 7) g",
    "(define h 1) (set! h 9) h",
    "(let ([x 1]) (set! x 8) x)",
    "(letrec ([f (lambda (n) (if (= n 0) 1 (* n (f (- n 1)))))]) (f 6))",
    "((lambda (a b) (+ a b)) 3 4)",
    "((lambda (a . r) (cons a r)) 1 2 3)",
    "((lambda r r) 1 2 3)",
    "(if #t 'yes 'no)",
    "(if (< 1 2) 'yes 'no)",
    "(if ((lambda () #f)) 'yes 'no)",
    "(begin 1 2 3)",
    "(begin (define q 4) (+ q q))",
    "(+ 1 2)",
    "(+ 1 ((lambda () 2)))",
    "((lambda () 5))",
    "(pcall + 1 2 3)",
    "(pcall + (* 3 4) (* 5 6))",
    "(call/cc (lambda (k) (+ 1 (k 41))))",
    "(+ 1 (spawn (lambda (c) (+ 2 (c (lambda (k) 10))))))",
    "(let ([p (future (lambda () 42))]) (+ 1 (touch p)))",
    "(define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1)))) (count 500 0)",
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)",
    """
    (define (even? n) (if (= n 0) #t (odd? (- n 1))))
    (define (odd? n) (if (= n 0) #f (even? (- n 1))))
    (list (even? 100) (odd? 77))
    """,
    "(map (lambda (x) (* x x)) '(1 2 3 4))",
    "(apply + 1 '(2 3 4))",
]


@pytest.mark.parametrize("source", DIFFERENTIAL_PROGRAMS)
def test_codegen_matches_compiled(source):
    codegen = _codegen(policy="serial").eval_to_string(source)
    compiled = Interpreter(engine="compiled", policy="serial").eval_to_string(source)
    assert codegen == compiled


def test_deep_tail_recursion_is_flat():
    interp = _codegen()
    interp.run("(define (loop n) (if (= n 0) 'done (loop (- n 1))))")
    assert interp.eval_to_string("(loop 100000)") == "done"


def test_closures_cross_engines():
    # A closure created by the codegen engine must run under the
    # compiled engine's machine, and vice versa — the emitted body obeys
    # the code-thunk contract both run loops understand.
    maker = _codegen()
    maker.run("(define (adder n) (lambda (x) (+ x n)))")
    add3 = maker.eval("(adder 3)")
    user = Interpreter(engine="compiled")
    user.globals.define(intern("add3"), add3)
    assert user.eval("(add3 39)") == 42

    maker2 = Interpreter(engine="compiled")
    maker2.run("(define (adder n) (lambda (x) (+ x n)))")
    add5 = maker2.eval("(adder 5)")
    user2 = _codegen()
    user2.globals.define(intern("add5"), add5)
    assert user2.eval("(add5 37)") == 42


def test_set_through_capture_multi_shot():
    # Mutation must stay visible across a reinstated top-level capture;
    # both engines agree form for form (the reinstatement re-runs the
    # later forms, so the interesting value is the final cell state).
    source = """
    (define cell 0)
    (define k2 (call/cc (lambda (k) k)))
    (set! cell (+ cell 1))
    (if (< cell 2) (k2 k2) cell)
    """
    codegen = _codegen()
    codegen.eval(source)
    compiled = Interpreter(engine="compiled")
    compiled.eval(source)
    assert codegen.eval("cell") == compiled.eval("cell")


# -- dialect rejection -------------------------------------------------


def test_codegen_rejects_unresolved_program():
    nodes = expand_program(read_all("(lambda (x) x)"), ExpandEnv())
    with pytest.raises(CompileError):
        codegen_program(nodes)


# -- the code cache ----------------------------------------------------


def test_cache_hit_on_identical_form():
    clear_cache()
    sess = Session(engine="codegen", prelude=False)
    stats = sess.codegen_stats
    sess.run("(+ 1 2)")
    misses = stats.misses
    assert misses >= 1
    assert stats.hits == 0
    sess.run("(+ 1 2)")
    assert stats.misses == misses  # same digest, source verified
    assert stats.hits == 1


def test_cache_is_shared_across_sessions():
    clear_cache()
    first = Session(engine="codegen", prelude=False)
    first.run("(* 6 7)")
    second = Session(engine="codegen", prelude=False)
    second.run("(* 6 7)")
    assert second.codegen_stats.hits == 1
    assert second.codegen_stats.misses == 0


def test_is_cached_and_cache_info():
    clear_cache()
    sess = Session(engine="codegen", prelude=False)
    nodes = _resolved_nodes("(+ 40 2)", sess.globals)
    assert not is_cached(nodes[0])
    codegen_node(nodes[0])
    assert is_cached(nodes[0])
    info = cache_info()
    assert info["capacity"] == _CACHE_CAPACITY
    assert 1 <= info["size"] <= _CACHE_CAPACITY


def test_cache_lru_eviction_at_capacity():
    clear_cache()
    sess = Session(engine="codegen", prelude=False)
    stats = CodegenStats()
    first = _resolved_nodes("(+ 0 1)", sess.globals)[0]
    codegen_node(first, stats)
    digest = stable_hash(first)
    for i in range(_CACHE_CAPACITY):
        node = _resolved_nodes(f"(+ {i} 2)", sess.globals)[0]
        codegen_node(node, stats)
    assert stats.evictions >= 1
    assert len(_CODE_CACHE_snapshot()) <= _CACHE_CAPACITY
    assert digest not in _CODE_CACHE_snapshot()  # oldest went first
    clear_cache()
    assert cache_info()["size"] == 0


def _CODE_CACHE_snapshot():
    from repro.ir.codegen import _CODE_CACHE

    return dict(_CODE_CACHE)


def test_source_mismatch_recompiles():
    # Effects facts are excluded from ir-hash-v1 but change the emitted
    # source (eager vs lazy spill), so a digest hit must verify the
    # source before reusing the code object.
    clear_cache()
    source = "(let ([f (lambda (x) (+ x 1))]) (f 41))"
    with_analysis = Session(engine="codegen", prelude=False, analysis=True)
    with_analysis.run(source)
    without = Session(engine="codegen", prelude=False, analysis=False)
    without.run(source)
    # Whether or not the sources differ for this exact shape, the two
    # runs must agree on the value and never serve a stale code object;
    # a second no-analysis run must hit.
    without2 = Session(engine="codegen", prelude=False, analysis=False)
    without2.run(source)
    assert without2.codegen_stats.hits >= 1


# -- the emitted artifact ----------------------------------------------


def test_thunk_contract_node_and_triv():
    sess = Session(engine="codegen", prelude=False)
    nodes = _resolved_nodes("(+ 1 2)", sess.globals)
    thunk = codegen_node(nodes[0])
    assert thunk.node is nodes[0]
    assert thunk.triv is None  # an App is not trivial
    const = _resolved_nodes("42", sess.globals)
    cthunk = codegen_node(const[0])
    assert cthunk.triv is not None
    assert cthunk.triv(None) == 42


def test_emitted_source_smoke():
    sess = Session(engine="codegen", prelude=False)
    nodes = _resolved_nodes(
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        sess.globals,
    )
    source = emitted_source(nodes[0])
    assert "def _f1(machine, task" in source
    assert "_env = task.env" in source
    assert "_SlotRib" in source
    compile(source, "<test>", "exec")  # must be valid Python


def test_emitted_stats_counters():
    sess = Session(engine="codegen", prelude=False)
    sess.run("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
    stats = sess.codegen_stats
    assert stats.nodes_emitted > 0
    assert stats.lambdas_emitted >= 1
    assert stats.apps_inlined >= 1
    assert stats.tests_inlined >= 1
    assert stats.self_inlines >= 1
    assert stats.emit_us >= 0
    merged = sess.stats
    assert merged["codegen.misses"] >= 1


def test_self_inline_guard_falls_through_on_rebinding():
    interp = _codegen()
    interp.run("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
    assert interp.eval("(fib 10)") == 55
    # Rebinding the global must be seen by every already-emitted call
    # site — the .body identity guard fails and dispatch goes generic.
    interp.run("(define (fib n) 99)")
    assert interp.eval("(fib 10)") == 99


def test_self_inline_sees_cross_engine_closure():
    # A same-named closure from another engine must not satisfy the
    # identity guard (different body function object).
    compiled = Interpreter(engine="compiled")
    compiled.run("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
    foreign = compiled.eval("fib")
    interp = _codegen()
    interp.run("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
    interp.globals.define(intern("fib"), foreign)
    assert interp.eval("(fib 10)") == 55


# -- fallback paths ----------------------------------------------------


def test_non_primitive_operator_in_inline_position():
    # (f 1 2) where f is a closure: the primitive guard's fallback
    # materialises the compiled engine's frame plan and delegates.
    interp = _codegen()
    interp.run("(define (f a b) (list a b))")
    assert interp.eval_to_string("(if (f 1 2) 'yes 'no)") == "yes"
    assert interp.eval_to_string("(+ 1 (length (f 1 2)))") == "3"


def test_arity_error_timing_matches_compiled():
    for engine in ("compiled", "codegen"):
        interp = Interpreter(engine=engine)
        interp.run("(define (g x) x)")
        with pytest.raises(ArityError):
            interp.eval("(g 1 2)")


def test_unbound_global_raises():
    interp = _codegen(prelude=False)
    with pytest.raises(UnboundVariableError):
        interp.eval("nope")
    with pytest.raises(UnboundVariableError):
        interp.eval("(nope 1)")
    with pytest.raises(UnboundVariableError):
        interp.eval("(set! nope 1)")


def test_global_defined_after_emit_is_seen():
    # Emission interns the cell; the UNBOUND check happens at run time,
    # so defining later (in a separate top-level form) works.
    interp = _codegen()
    interp.run("(define (peek) late)")
    with pytest.raises(UnboundVariableError, match="late"):
        interp.eval("(peek)")
    interp.run("(define late 'now)")
    assert interp.eval_to_string("(peek)") == "now"


def test_continuation_operator_delegates():
    # call/cc's k flows into an inline apply site: classes other than
    # Closure/Primitive must spill and delegate.
    interp = _codegen()
    assert interp.eval("(+ 1 (call/cc (lambda (k) (k 41))))") == 42
