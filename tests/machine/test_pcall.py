"""pcall: tree-structured concurrency semantics."""

import pytest

from repro import Interpreter
from repro.errors import MachineError


def test_pcall_basic(interp):
    assert interp.eval("(pcall + 1 2)") == 3


def test_pcall_operator_evaluated_in_parallel_branch(interp):
    assert interp.eval("(pcall (if #t + *) 2 3)") == 5


def test_pcall_nested(interp):
    assert interp.eval("(pcall + (pcall * 2 3) (pcall - 10 4))") == 12


def test_pcall_single_operator_no_args(interp):
    assert interp.eval("(pcall (lambda () 9))") == 9


def test_pcall_branches_interleave():
    """Each branch bumps its own vector slot and finally reads the
    *other* branch's slot.  Under interleaving both observations are
    nonzero; under serial elaboration the first-finishing branch would
    observe 0."""
    interp = Interpreter(quantum=1)
    interp.run(
        """
        (define v (make-vector 2 0))
        (define (walk slot n)
          (if (= n 0)
              (vector-ref v (- 1 slot))
              (begin (vector-set! v slot n) (walk slot (- n 1)))))
        """
    )
    a_seen, b_seen = interp.eval("(pcall cons (walk 0 50) (walk 1 50))").car, None
    b_seen = interp.eval("(vector-ref v 0)")  # a finished, slot stays at 1
    assert a_seen != 0  # branch a observed branch b mid-flight
    assert b_seen == 1


def test_pcall_serial_policy_runs_branches_to_completion():
    """Control for the interleaving test: the serial policy elaborates
    the first branch fully before the second starts."""
    interp = Interpreter(policy="serial")
    interp.run(
        """
        (define v (make-vector 2 0))
        (define (walk slot n)
          (if (= n 0)
              (vector-ref v (- 1 slot))
              (begin (vector-set! v slot n) (walk slot (- n 1)))))
        """
    )
    result = interp.eval("(pcall cons (walk 0 50) (walk 1 50))")
    # Branch 0 completed before branch 1 wrote anything.
    assert result.car == 0


def test_pcall_interleaving_exposes_lost_updates():
    """A genuine race: ``(set! x (cons tag x))`` in two branches is a
    read-modify-write; lockstep interleaving loses updates.  This is
    exactly the Section 3 observation that side effects may interleave
    between continuation operations."""
    interp = Interpreter(quantum=1)
    interp.run(
        """
        (define trace '())
        (define (walk tag n)
          (if (= n 0)
              tag
              (begin (set! trace (cons tag trace)) (walk tag (- n 1)))))
        """
    )
    interp.eval("(pcall list (walk 'a 20) (walk 'b 20))")
    assert interp.eval("(length trace)") < 40  # updates were lost


def test_pcall_result_order_is_positional():
    interp = Interpreter(quantum=1)
    interp.run(
        """
        (define (slow v n) (if (= n 0) v (slow v (- n 1))))
        """
    )
    # The slow branch is first positionally; order of completion must
    # not affect argument order.
    assert interp.eval_to_string("(pcall list (slow 'x 200) 'y)") == "(x y)"


def test_pcall_fan_out(interp):
    assert interp.eval("(pcall + 1 2 3 4 5 6 7 8 9 10)") == 55


def test_pcall_sides_share_store(interp):
    interp.run("(define hits 0)")
    interp.eval(
        "(pcall (lambda (a b) 0) (set! hits (+ hits 1)) (set! hits (+ hits 1)))"
    )
    assert interp.eval("hits") == 2


def test_pcall_stats_counted(interp):
    before = interp.stats["forks"]
    interp.eval("(pcall + 1 (pcall * 2 3))")
    assert interp.stats["forks"] == before + 2


def test_pcall_error_in_branch_propagates(interp):
    from repro.errors import SchemeError

    with pytest.raises(SchemeError):
        interp.eval('(pcall + 1 (error "branch died"))')


def test_pcall_random_policy_same_result():
    for seed in (0, 1, 2, 3):
        interp = Interpreter(policy="random", seed=seed)
        assert interp.eval("(pcall + (* 3 4) (* 5 6))") == 42


def test_pcall_serial_policy(serial_interp):
    assert serial_interp.eval("(pcall + 1 2)") == 3


def test_deeply_nested_pcall(interp):
    interp.run(
        """
        (define (psum lo hi)
          (if (= lo hi)
              lo
              (let ([mid (quotient (+ lo hi) 2)])
                (pcall + (psum lo mid) (psum (+ mid 1) hi)))))
        """
    )
    assert interp.eval("(psum 1 100)") == 5050
