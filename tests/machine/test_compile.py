"""The closure compiler (repro.ir.compile) and the compiled engine.

Per-node-kind behavior, dialect rejection, compile-stage statistics,
and the machine-level seams: the ``engine`` knob, the raw-IR fallback
in ``step_compiled``, and closures carrying compiled body code.
"""

from types import FunctionType

import pytest

from repro import Interpreter
from repro.datum import intern
from repro.errors import CompileError, UnboundVariableError
from repro.expander import ExpandEnv, expand_program
from repro.ir import CompileStats, Const, Lambda, compile_node, compile_program
from repro.ir import resolve_program
from repro.machine.scheduler import ENGINES, Machine
from repro.reader import read_all


def _compiled_interp(**kwargs):
    return Interpreter(engine="compiled", **kwargs)


# -- per-node-kind behavior (differential against the resolved engine) --

NODE_KIND_PROGRAMS = [
    "42",  # Const
    "'sym",  # Const (quote)
    "(let ([x 5]) x)",  # LocalRef depth 0
    "(let ([x 5]) (let ([y 2]) x))",  # LocalRef depth 1
    "(let ([a 1]) (let ([b 2]) (let ([c 3]) a)))",  # LocalRef depth n
    "(define g 7) g",  # GlobalRef / Define
    "(define h 1) (set! h 9) h",  # GlobalSet
    "(let ([x 1]) (set! x 8) x)",  # LocalSet
    "((lambda (a b) (+ a b)) 3 4)",  # Lambda + App
    "((lambda (a . r) (cons a r)) 1 2 3)",  # rest args
    "(if #t 'yes 'no)",  # If, trivial test
    "(if (< 1 2) 'yes 'no)",  # If, inlined primitive test
    "(if ((lambda () #f)) 'yes 'no)",  # If, non-trivial test
    "(begin 1 2 3)",  # Seq
    "(begin (define q 4) (+ q q))",  # Seq with effects
    "(+ 1 2)",  # fully trivial App (apply_deliver path)
    "(+ 1 ((lambda () 2)))",  # mixed trivial/non-trivial args
    "((lambda () 5))",  # zero-arg App
    "(pcall + 1 2 3)",  # Pcall
    "(call/cc (lambda (k) (+ 1 (k 41))))",  # capture through compiled frames
]


@pytest.mark.parametrize("source", NODE_KIND_PROGRAMS)
def test_compiled_matches_resolved(source):
    compiled = Interpreter(engine="compiled", policy="serial").eval_to_string(source)
    resolved = Interpreter(engine="resolved", policy="serial").eval_to_string(source)
    assert compiled == resolved


# -- dialect rejection -------------------------------------------------


def test_compile_rejects_unresolved_program():
    # Expanded-but-unresolved IR uses the Var dialect, which only the
    # dict engine understands.
    nodes = expand_program(read_all("(lambda (x) x)"), ExpandEnv())
    with pytest.raises(CompileError):
        compile_program(nodes)


def test_compile_rejects_unresolved_lambda():
    unresolved = Lambda(params=(intern("x"),), rest=None, body=Const(1))
    assert unresolved.nslots is None
    with pytest.raises(CompileError):
        compile_node(unresolved)


# -- compile statistics ------------------------------------------------


def test_compile_stats_counters():
    interp = _compiled_interp()
    machine = interp.machine
    nodes = expand_program(
        read_all("(define (f x) (if x 0 (+ x 1))) (f 3)"), ExpandEnv()
    )
    nodes = resolve_program(nodes, machine.globals)
    stats = CompileStats()
    compile_program(nodes, stats)
    counters = stats.as_dict()
    assert counters["compile_nodes"] > 0
    assert counters["compile_lambdas"] == 1
    assert counters["compile_apps_inlined"] >= 1  # (+ x 1) is fully trivial
    assert counters["compile_tests_inlined"] >= 1  # x is a trivial test


def test_interpreter_stats_include_compile_counters():
    interp = _compiled_interp()
    interp.eval("(+ 1 2)")
    stats = interp.stats
    assert stats["compile.nodes"] > 0
    assert "compile.apps_inlined" in stats


def test_resolved_engine_stats_omit_compile_counters():
    interp = Interpreter(engine="resolved")
    interp.eval("(+ 1 2)")
    assert "compile.nodes" not in interp.stats


# -- the engine seam ---------------------------------------------------


def test_engines_tuple_names_all_four():
    assert ENGINES == ("dict", "resolved", "compiled", "codegen")


def test_machine_rejects_unknown_engine():
    with pytest.raises(ValueError) as exc:
        Machine(engine="bogus")
    # The error names every engine, so a typo'd selector is self-serving.
    for name in ("dict", "resolved", "compiled", "codegen"):
        assert name in str(exc.value)


def test_interpreter_engine_defaults():
    assert Interpreter().engine == "compiled"
    assert Interpreter(engine="dict").engine == "dict"
    assert Interpreter(engine="resolved").engine == "resolved"


def test_fold_flag_tracks_engine():
    assert Machine(engine="resolved").fold is True
    assert Machine(engine="compiled").fold is False
    assert Machine(engine="dict").fold is False


def test_closure_body_is_compiled_code():
    interp = _compiled_interp()
    interp.run("(define (f x) (+ x 1))")
    closure = interp.eval("f")
    assert isinstance(closure.body, FunctionType)
    assert interp.eval("(f 41)") == 42


def test_compiled_code_carries_source_node():
    interp = _compiled_interp()
    machine = interp.machine
    nodes = expand_program(read_all("(+ 1 2)"), ExpandEnv())
    nodes = resolve_program(nodes, machine.globals)
    code = compile_node(nodes[0])
    assert code.node is nodes[0]
    # A trivial node's .triv evaluates it without the machine.
    lit = compile_node(resolve_program(expand_program(read_all("7"), ExpandEnv()), machine.globals)[0])
    assert lit.triv is not None
    assert lit.triv(machine.toplevel_env) == 7


def test_compiled_machine_evaluates_raw_nodes():
    # step_compiled falls back to the node dispatch table when handed
    # an uncompiled IR node (incremental embedding API).
    interp = _compiled_interp()
    nodes = expand_program(read_all("(+ 20 22)"), ExpandEnv())
    assert interp.machine.eval_node(nodes[0]) == 42


def test_unbound_global_raises_under_compiled():
    interp = _compiled_interp()
    with pytest.raises(UnboundVariableError, match="phantom"):
        interp.eval("phantom")


def test_global_defined_after_compile_is_seen():
    # Compilation interns the cell; the UNBOUND check happens at run
    # time, so defining later (in a separate top-level form) works.
    interp = _compiled_interp()
    interp.run("(define (peek) late)")
    with pytest.raises(UnboundVariableError, match="late"):
        interp.eval("(peek)")
    interp.run("(define late 'now)")
    assert interp.eval_to_string("(peek)") == "now"


def test_step_budget_still_counts_loop_iterations():
    # Fusion is bounded by static nesting: a loop still costs at least
    # one step per iteration, so the step budget keeps firing.
    from repro.errors import StepBudgetExceeded

    interp = _compiled_interp(max_steps=500)
    with pytest.raises(StepBudgetExceeded):
        interp.eval("(let loop ([n 0]) (loop (+ n 1)))")


def test_closures_cross_engines():
    # A closure whose body is a resolved IR tree still applies on a
    # compiled machine: application schedules (EVAL, body) and
    # step_compiled falls back to the node dispatch table.
    producer = Interpreter(engine="resolved")
    closure = producer.eval("(lambda (x) (* x x))")
    assert not isinstance(closure.body, FunctionType)
    consumer = _compiled_interp()
    consumer.machine.globals.define(intern("sq"), closure)
    assert consumer.eval("(sq 9)") == 81
