"""The inspect module: rendering and summaries on synthetic trees."""

from repro import Interpreter
from repro.machine.environment import Environment, GlobalEnv
from repro.machine.inspect import render_entity, render_tree, tree_summary
from repro.machine.links import TOMBSTONE, ForkLink, HaltLink, Join, Label, LabelLink
from repro.machine.task import EVAL, Task


def make_task():
    genv = GlobalEnv()
    env = Environment.toplevel(genv)
    from repro.ir import Const

    return Task((EVAL, Const(1)), env, None, None)  # type: ignore[arg-type]


def test_render_none_and_tombstone():
    assert render_entity(None) == ["(empty)"]
    assert render_entity(TOMBSTONE) == ["(tombstone)"]


def test_render_task_shows_state_and_control():
    task = make_task()
    (line,) = render_entity(task)
    assert "task#" in line and "runnable" in line and "eval" in line


def test_render_label_nests_child():
    task = make_task()
    link = LabelLink(Label("demo"), None, None, child=task)
    task.link = link
    lines = render_entity(link)
    assert lines[0].startswith("label demo")
    assert lines[1].startswith("  task#")


def test_render_join_lists_branches():
    join = Join(2, None, None)
    a, b = make_task(), make_task()
    a.link = ForkLink(join, 0)
    b.link = ForkLink(join, 1)
    join.children = [a, b]
    lines = render_entity(join)
    assert "join 0/2" in lines[0]
    assert any("branch 0" in line for line in lines)
    assert any("branch 1" in line for line in lines)


def test_summary_counts():
    join = Join(2, None, None)
    a, b = make_task(), make_task()
    join.children = [a, b]
    label = LabelLink(Label("x"), None, None, child=join)
    summary = tree_summary(label)
    assert summary["labels"] == 1
    assert summary["joins"] == 1
    assert summary["tasks"] == 2
    assert summary["runnable"] == 2


def test_summary_counts_prompts_separately():
    from repro.machine.links import PromptLabel

    prompt = LabelLink(PromptLabel(), None, None, child=make_task())
    summary = tree_summary(prompt)
    assert summary["prompts"] == 1
    assert summary["labels"] == 0


def test_summary_tombstones():
    join = Join(2, None, None)
    join.children = [TOMBSTONE, make_task()]
    assert tree_summary(join)["tombstones"] == 1


def test_render_tree_live_machine():
    interp = Interpreter()
    snapshots = []

    def hook(machine, task):
        if len(snapshots) < 2:
            snapshots.append(render_tree(machine))

    interp.machine.trace_hook = hook
    interp.eval("(+ 1 2)")
    assert snapshots and "label root" in snapshots[0]


def test_frames_above_reported():
    interp = Interpreter()
    seen = []

    def hook(machine, task):
        text = render_tree(machine)
        if "frames=" in text:
            seen.append(text)

    interp.machine.trace_hook = hook
    # Deep enough that pending AppFrames survive to a step boundary even
    # under the compiled engine's trivial-application fusion.
    interp.eval("(+ 1 (+ 2 (+ 3 (+ 4 (+ 5 6)))))")
    # Some snapshot shows a task with nonzero pending frames.
    assert any("frames=2" in text or "frames=3" in text for text in seen)
