"""The tracer: event sequences for control operations."""

from repro import Interpreter
from repro.machine.trace import Tracer


def test_fork_and_join_events():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(pcall + 1 2)")
    kinds = tracer.kinds()
    assert kinds.count("fork") == 1
    assert kinds.count("join-fire") == 1
    assert kinds.index("fork") < kinds.index("join-fire")


def test_label_pop_on_normal_return():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) 1))")
    # The spawn label pops, then the implicit root label pops.
    assert len(tracer.events_of_kind("label-pop")) == 2


def test_capture_reinstate_sequence():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))")
    kinds = [k for k in tracer.kinds() if k in ("capture", "reinstate", "label-pop")]
    # capture, then reinstate, then the reinstated label pops, then root.
    assert kinds == ["capture", "reinstate", "label-pop", "label-pop"]


def test_abort_has_no_reinstate():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))")
    assert len(tracer.events_of_kind("capture")) == 1
    assert not tracer.events_of_kind("reinstate")
    # Only the root label pops normally: the spawn label left by capture.
    assert len(tracer.events_of_kind("label-pop")) == 1


def test_prompt_pop_distinguished():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(prompt (+ 1 2))")
    assert len(tracer.events_of_kind("prompt-pop")) == 1


def test_multi_shot_reinstates_counted():
    interp = Interpreter()
    interp.run("(define k (spawn (lambda (c) (+ 1 (c (lambda (kk) kk))))))")
    with Tracer(interp.machine) as tracer:
        interp.eval("(+ (k 1) (k 2))")
    assert len(tracer.events_of_kind("reinstate")) == 2


def test_task_switches_recorded_when_asked():
    interp = Interpreter(quantum=1)
    with Tracer(interp.machine, record_switches=True) as tracer:
        interp.eval("(pcall + (* 1 2) (* 3 4))")
    switches = tracer.events_of_kind("task-switch")
    assert len(switches) >= 3  # root, then at least the branches


def test_render_is_readable():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(pcall + 1 (spawn (lambda (c) 2)))")
    text = tracer.render()
    assert "fork" in text and "label-pop" in text and "step" in text


def test_tracer_restores_machine_state():
    interp = Interpreter()
    original_fork = interp.machine.notify_fork
    with Tracer(interp.machine):
        interp.eval("(pcall + 1 2)")
    # Bound-method objects are recreated per access; compare equality.
    assert interp.machine.notify_fork == original_fork
    assert interp.machine.trace_hook is None
    # And a subsequent run records nothing new anywhere.
    interp.eval("(pcall + 3 4)")


def test_nested_search_trace_shape():
    """parallel-search: one capture per hit, one reinstate per resume."""
    interp = Interpreter()
    interp.load_paper_example("search-all")
    interp.run("(define t (list->tree '(2 1 3)))")
    with Tracer(interp.machine) as tracer:
        interp.eval("(search-all t odd?)")
    captures = len(tracer.events_of_kind("capture"))
    reinstates = len(tracer.events_of_kind("reinstate"))
    assert captures == 2  # two odd nodes: 1 and 3
    assert reinstates == 2  # each hit resumed once by the drain loop


def test_counted_equals_emitted_across_engines_and_quanta():
    """The seed tracer sniffed stats deltas from a per-step hook and
    collapsed multiple control events per interval; the notify-based
    tracer must emit exactly one event per counter unit — including
    under the batched loop at quantum 4096, where the hook fires once
    per quantum."""
    for engine in ("dict", "resolved", "compiled"):
        for quantum in (1, 16, 4096):
            interp = Interpreter(engine=engine, quantum=quantum)
            interp.load_paper_example("search-all")
            interp.run("(define t (list->tree '(5 2 8 1 3 7 9)))")
            with Tracer(interp.machine) as tracer:
                interp.eval("(search-all t odd?)")
            counted_c = interp.stats["captures"]
            counted_r = interp.stats["reinstatements"]
            emitted_c = len(tracer.events_of_kind("capture"))
            emitted_r = len(tracer.events_of_kind("reinstate"))
            assert counted_c > 0, f"{engine}/q{quantum}"
            assert emitted_c == counted_c, f"{engine}/q{quantum}"
            assert emitted_r == counted_r, f"{engine}/q{quantum}"


def test_no_event_loss_on_budget_abort():
    """Regression: a capture immediately followed by a budget abort
    produced a counter bump with no further step for the old hook to
    observe, silently losing the event."""
    from repro.errors import StepBudgetExceeded

    for budget in range(1, 40):
        interp = Interpreter(quantum=16)
        with Tracer(interp.machine) as tracer:
            try:
                interp.eval("(spawn (lambda (c) (c (lambda (k) k))))",
                            max_steps=budget)
            except StepBudgetExceeded:
                pass
        assert len(tracer.events_of_kind("capture")) == interp.stats["captures"]
        assert (len(tracer.events_of_kind("reinstate"))
                == interp.stats["reinstatements"])


def test_tracer_reusable_across_sequential_with_blocks():
    interp = Interpreter()
    tracer = Tracer(interp.machine)
    with tracer:
        interp.eval("(pcall + 1 2)")
    first = len(tracer.events)
    assert first > 0
    with tracer:
        interp.eval("(pcall + 3 4)")
    # Second run starts from a clean slate, not an accumulated log.
    assert len(tracer.events) == first
    assert len(tracer.events_of_kind("fork")) == 1


def test_tracer_nested_entry_raises():
    import pytest

    interp = Interpreter()
    tracer = Tracer(interp.machine)
    with tracer:
        with pytest.raises(RuntimeError, match="re-entrant"):
            with tracer:
                pass
    # The outer exit restored the machine cleanly.
    assert interp.machine.trace_hook is None
    interp.eval("(pcall + 1 2)")


def test_capture_events_name_the_capturing_task():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))")
    (capture,) = tracer.events_of_kind("capture")
    (reinstate,) = tracer.events_of_kind("reinstate")
    assert "task" in capture.detail
    assert "task" in reinstate.detail
