"""The tracer: event sequences for control operations."""

from repro import Interpreter
from repro.machine.trace import Tracer


def test_fork_and_join_events():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(pcall + 1 2)")
    kinds = tracer.kinds()
    assert kinds.count("fork") == 1
    assert kinds.count("join-fire") == 1
    assert kinds.index("fork") < kinds.index("join-fire")


def test_label_pop_on_normal_return():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) 1))")
    # The spawn label pops, then the implicit root label pops.
    assert len(tracer.events_of_kind("label-pop")) == 2


def test_capture_reinstate_sequence():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))")
    kinds = [k for k in tracer.kinds() if k in ("capture", "reinstate", "label-pop")]
    # capture, then reinstate, then the reinstated label pops, then root.
    assert kinds == ["capture", "reinstate", "label-pop", "label-pop"]


def test_abort_has_no_reinstate():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))")
    assert len(tracer.events_of_kind("capture")) == 1
    assert not tracer.events_of_kind("reinstate")
    # Only the root label pops normally: the spawn label left by capture.
    assert len(tracer.events_of_kind("label-pop")) == 1


def test_prompt_pop_distinguished():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(prompt (+ 1 2))")
    assert len(tracer.events_of_kind("prompt-pop")) == 1


def test_multi_shot_reinstates_counted():
    interp = Interpreter()
    interp.run("(define k (spawn (lambda (c) (+ 1 (c (lambda (kk) kk))))))")
    with Tracer(interp.machine) as tracer:
        interp.eval("(+ (k 1) (k 2))")
    assert len(tracer.events_of_kind("reinstate")) == 2


def test_task_switches_recorded_when_asked():
    interp = Interpreter(quantum=1)
    with Tracer(interp.machine, record_switches=True) as tracer:
        interp.eval("(pcall + (* 1 2) (* 3 4))")
    switches = tracer.events_of_kind("task-switch")
    assert len(switches) >= 3  # root, then at least the branches


def test_render_is_readable():
    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(pcall + 1 (spawn (lambda (c) 2)))")
    text = tracer.render()
    assert "fork" in text and "label-pop" in text and "step" in text


def test_tracer_restores_machine_state():
    interp = Interpreter()
    original_fork = interp.machine.notify_fork
    with Tracer(interp.machine):
        interp.eval("(pcall + 1 2)")
    # Bound-method objects are recreated per access; compare equality.
    assert interp.machine.notify_fork == original_fork
    assert interp.machine.trace_hook is None
    # And a subsequent run records nothing new anywhere.
    interp.eval("(pcall + 3 4)")


def test_nested_search_trace_shape():
    """parallel-search: one capture per hit, one reinstate per resume."""
    interp = Interpreter()
    interp.load_paper_example("search-all")
    interp.run("(define t (list->tree '(2 1 3)))")
    with Tracer(interp.machine) as tracer:
        interp.eval("(search-all t odd?)")
    captures = len(tracer.events_of_kind("capture"))
    reinstates = len(tracer.events_of_kind("reinstate"))
    assert captures == 2  # two odd nodes: 1 and 3
    assert reinstates == 2  # each hit resumed once by the drain loop
