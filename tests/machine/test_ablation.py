"""The copying-capture ablation must be behaviourally identical to the
sharing capture — only its cost differs (benched in E9)."""

from repro import Interpreter
from repro.machine.ablation import clone_capture_copying, copy_frames
from repro.machine.frames import AppFrame, frame_chain_length
from repro.machine.tree import clone_capture, reinstate
from repro.machine.task import VALUE


def make_continuation(interp, source):
    return interp.eval(source)


def test_copy_frames_preserves_chain():
    interp = Interpreter()
    k = interp.eval(
        "(spawn (lambda (c) (+ 1 (* 2 (- 10 (c (lambda (kk) kk)))))))"
    )
    original = k.capture.hole.frames
    copied = copy_frames(original)
    assert frame_chain_length(copied) == frame_chain_length(original)
    # Same frame kinds in the same order.
    node_a, node_b = original, copied
    while node_a is not None:
        assert type(node_a) is type(node_b)
        assert node_a is not node_b  # genuinely copied
        node_a, node_b = node_a.next, node_b.next
    assert node_b is None


def test_copy_frames_empty():
    assert copy_frames(None) is None


def test_copying_clone_same_shape():
    interp = Interpreter()
    k = interp.eval(
        """
        (spawn (lambda (c)
                 (pcall +
                        (c (lambda (kk) kk))
                        (* 2 3))))
        """
    )
    shared = clone_capture(k.capture)
    copied = clone_capture_copying(k.capture)
    assert shared.control_points() == copied.control_points()
    assert shared.task_count() == copied.task_count()


def test_copying_clone_reinstates_identically():
    """Swap a capture's package for its copying clone and reinstate:
    the computation must produce the same answer."""
    from repro.datum import intern

    source = "(spawn (lambda (c) (+ 1 (* 2 (c (lambda (kk) kk))))))"

    interp_a = Interpreter()
    k_a = interp_a.eval(source)
    interp_a.machine.globals.define(intern("k"), k_a)
    baseline = interp_a.eval("(k 10)")

    interp_b = Interpreter()
    k_b = interp_b.eval(source)
    # Replace the package with a deep-copied one.
    k_b.capture = clone_capture_copying(k_b.capture)
    interp_b.machine.globals.define(intern("k"), k_b)
    assert interp_b.eval("(k 10)") == baseline == 21


def test_copying_clone_multi_shot():
    interp = Interpreter()
    k = interp.eval("(spawn (lambda (c) (+ 5 (c (lambda (kk) kk)))))")
    k.capture = clone_capture_copying(k.capture)
    from repro.datum import intern

    interp.machine.globals.define(intern("k"), k)
    assert interp.eval("(k 1)") == 6
    assert interp.eval("(k 2)") == 7


def test_sharing_clone_shares_frames_copying_does_not():
    interp = Interpreter()
    k = interp.eval("(spawn (lambda (c) (+ 1 (c (lambda (kk) kk)))))")
    shared = clone_capture(k.capture)
    copied = clone_capture_copying(k.capture)
    assert shared.hole.frames is k.capture.hole.frames  # shared
    assert copied.hole.frames is not k.capture.hole.frames  # copied
