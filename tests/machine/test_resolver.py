"""The resolver pass: lexical addresses, global cells, and the
resolved machine's behaviour against the dict-chain baseline."""

import pytest

from repro import Interpreter
from repro.datum import intern, to_pylist
from repro.errors import UnboundVariableError
from repro.expander import ExpandEnv, expand_program
from repro.ir import (
    App,
    DefineTop,
    GlobalRef,
    GlobalSet,
    Lambda,
    LocalRef,
    LocalSet,
    resolve_program,
)
from repro.machine.environment import GlobalEnv
from repro.reader import read_all


def resolve_source(source, genv=None):
    """Read + expand + resolve; returns the list of top-level nodes."""
    genv = genv if genv is not None else GlobalEnv()
    nodes = expand_program(read_all(source), ExpandEnv())
    return resolve_program(nodes, genv)


# -- IR-level address assertions -----------------------------------------


def test_param_resolves_to_depth0():
    (lam,) = resolve_source("(lambda (x y) y)")
    assert isinstance(lam, Lambda)
    assert lam.nslots == 2
    assert lam.body == LocalRef(0, 1, intern("y"))


def test_nested_lambda_outer_param_depth1():
    (lam,) = resolve_source("(lambda (x) (lambda (y) x))")
    inner = lam.body
    assert inner.body == LocalRef(1, 0, intern("x"))


def test_shadowing_resolves_to_innermost():
    (lam,) = resolve_source("(lambda (x) (lambda (x) x))")
    assert lam.body.body == LocalRef(0, 0, intern("x"))


def test_rest_arg_gets_last_slot():
    (lam,) = resolve_source("(lambda (a b . rest) rest)")
    assert lam.nslots == 3
    assert lam.body == LocalRef(0, 2, intern("rest"))


def test_thunk_contributes_no_depth():
    # The thunk allocates no rib, so x is still one rib away — depth 0
    # from inside the thunk's body.
    (lam,) = resolve_source("(lambda (x) (lambda () x))")
    thunk = lam.body
    assert thunk.nslots == 0
    assert thunk.body == LocalRef(0, 0, intern("x"))


def test_free_name_becomes_global_ref():
    genv = GlobalEnv()
    (node,) = resolve_source("(f 1)", genv)
    assert isinstance(node, App)
    assert isinstance(node.fn, GlobalRef)
    assert node.fn.cell is genv.cell(intern("f"))


def test_set_on_local_and_global():
    (lam,) = resolve_source("(lambda (x) (set! x 1))")
    assert isinstance(lam.body, LocalSet)
    assert (lam.body.depth, lam.body.index) == (0, 0)
    (lam,) = resolve_source("(lambda () (set! g 1))")
    assert isinstance(lam.body, GlobalSet)


def test_forward_reference_shares_the_define_cell():
    # A reference compiled before its define must read the same cell
    # the later define writes.
    genv = GlobalEnv()
    before, define = resolve_source("(lambda () later)  (define later 7)", genv)
    assert isinstance(define, DefineTop)
    assert before.body.cell is genv.cell(intern("later"))


# -- behaviour: resolved machine vs dict-chain baseline -------------------

EQUIV_PROGRAMS = [
    "(let ([x 1] [y 2]) (+ x y))",
    "((lambda (a . rest) (cons a rest)) 1 2 3)",
    # letrec: mutual recursion through set!-initialised slots.
    """
    (letrec ([even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))]
             [odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))])
      (even? 101))
    """,
    # named let shadowing an outer binding of the same name.
    """
    (let ([loop 'outer])
      (let loop ([i 0]) (if (= i 3) 'inner (loop (+ i 1)))))
    """,
    # shadowing across letrec.
    "(let ([x 1]) (letrec ([x (lambda () 5)]) (x)))",
    "(define counter 0) (define (bump) (set! counter (+ counter 1)) counter) (bump) (bump)",
    "(call/cc (lambda (k) (+ 1 (k 41))))",
    "(pcall list 'a 'b 'c)",
]


@pytest.mark.parametrize("source", EQUIV_PROGRAMS)
def test_resolved_and_dict_agree(source):
    resolved = Interpreter(policy="serial", engine="resolved").eval(source)
    baseline = Interpreter(policy="serial", engine="dict").eval(source)
    assert type(resolved) is type(baseline)
    assert repr(resolved) == repr(baseline)


def test_set_global_defined_after_closure_creation(interp):
    interp.run("(define (poke) (set! target (+ target 1)) target)")
    interp.run("(define target 10)")
    assert interp.eval("(poke)") == 11
    assert interp.eval("target") == 11


def test_global_ref_before_define_raises_until_defined(interp):
    interp.run("(define (peek) phantom)")
    with pytest.raises(UnboundVariableError, match="phantom"):
        interp.eval("(peek)")
    interp.run("(define phantom 'now)")
    assert interp.eval("(peek)").name == "now"


def test_set_unbound_global_raises(interp):
    with pytest.raises(UnboundVariableError, match="nothing"):
        interp.eval("(set! nothing 1)")


def test_pcall_branches_share_captured_rib(interp):
    # Both branches close over the same let rib; mutation through one
    # closure is visible to the other (ribs are shared by reference).
    result = interp.eval(
        """
        (let ([box 0])
          (pcall list
                 (begin (set! box (+ box 1)) box)
                 (begin (set! box (+ box 1)) box)))
        """
    )
    assert sorted(to_pylist(result)) == [1, 2]


def test_closure_captures_rib_not_snapshot(interp):
    interp.run(
        """
        (define (make-counter)
          (let ([n 0])
            (lambda () (set! n (+ n 1)) n)))
        (define c (make-counter))
        """
    )
    assert [interp.eval("(c)") for _ in range(3)] == [1, 2, 3]


def test_resolver_stats_exposed(interp):
    interp.eval("(let ([x 1]) (+ x x))")
    stats = interp.stats
    assert stats["resolver.locals"] >= 2
    assert stats["resolver.globals"] >= 1  # the + reference
    assert stats["resolver.lambdas"] >= 1
    assert "resolver.cells_interned" in stats


def test_dict_engine_interp_has_no_resolver_stats():
    interp = Interpreter(engine="dict")
    interp.eval("(+ 1 2)")
    assert "resolver.locals" not in interp.stats
