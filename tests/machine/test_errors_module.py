"""The error hierarchy: structure and payloads."""

import pytest

from repro import errors


def test_single_root():
    leaves = [
        errors.ReaderError,
        errors.ExpandError,
        errors.MachineError,
        errors.SchemeError,
        errors.WrongTypeError,
        errors.ArityError,
        errors.UnboundVariableError,
        errors.ControlError,
        errors.InvalidControllerError,
        errors.DeadControllerError,
        errors.PromptMissingError,
        errors.ContinuationReusedError,
        errors.SemanticsError,
        errors.StuckTermError,
        errors.RuntimeAPIError,
        errors.StepBudgetExceeded,
    ]
    for cls in leaves:
        assert issubclass(cls, errors.ReproError), cls


def test_control_hierarchy():
    assert issubclass(errors.InvalidControllerError, errors.ControlError)
    assert issubclass(errors.DeadControllerError, errors.InvalidControllerError)
    assert issubclass(errors.ControlError, errors.MachineError)


def test_reader_error_location():
    err = errors.ReaderError("bad token", line=3, column=7)
    assert err.line == 3 and err.column == 7
    assert "line 3" in str(err) and "column 7" in str(err)


def test_reader_error_without_location():
    err = errors.ReaderError("oops")
    assert err.line is None
    assert str(err) == "oops"


def test_scheme_error_irritants():
    err = errors.SchemeError("bad", irritants=(1, 2))
    assert err.irritants == (1, 2)


def test_unbound_variable_name():
    err = errors.UnboundVariableError("ghost")
    assert err.name == "ghost"
    assert "ghost" in str(err)


def test_stuck_term_carries_term():
    sentinel = object()
    err = errors.StuckTermError("stuck", term=sentinel)
    assert err.term is sentinel


def test_step_budget_carries_count():
    err = errors.StepBudgetExceeded(1234)
    assert err.steps == 1234
    assert "1234" in str(err)


def test_one_except_catches_everything():
    """A host application can catch ReproError and be safe."""
    from repro import Interpreter

    interp = Interpreter(max_steps=500)
    bad_inputs = [
        "(",  # reader
        "(lambda)",  # expander
        "(car 1)",  # type
        "((lambda (x) x))",  # arity
        "nope",  # unbound
        '(error "user")',  # scheme error
        "((spawn (lambda (c) c)) (lambda (k) k))",  # dead controller
        "(F (lambda (k) k))",  # missing prompt
        "(let loop () (loop))",  # budget
    ]
    for source in bad_inputs:
        with pytest.raises(errors.ReproError):
            interp.eval(source)
