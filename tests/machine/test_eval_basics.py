"""Machine evaluation basics."""

import pytest

from repro.datum import UNSPECIFIED
from repro.errors import (
    ArityError,
    StepBudgetExceeded,
    UnboundVariableError,
    WrongTypeError,
)


def test_constants(bare_interp):
    assert bare_interp.eval("42") == 42
    assert bare_interp.eval("#f") is False
    assert bare_interp.eval('"s"') == "s"


def test_quote(bare_interp):
    assert bare_interp.eval_to_string("'(a b)") == "(a b)"


def test_application(bare_interp):
    assert bare_interp.eval("((lambda (x y) (+ x y)) 2 3)") == 5


def test_left_to_right_argument_order(interp):
    interp.run("(define order '())")
    interp.eval(
        """
        ((lambda (a b c) 0)
         (begin (set! order (cons 1 order)) 0)
         (begin (set! order (cons 2 order)) 0)
         (begin (set! order (cons 3 order)) 0))
        """
    )
    assert interp.eval_to_string("order") == "(3 2 1)"


def test_closure_captures_environment(bare_interp):
    assert bare_interp.eval("(((lambda (x) (lambda (y) (+ x y))) 10) 5)") == 15


def test_closures_share_mutable_binding(interp):
    interp.run(
        """
        (define cell
          (let ([x 0])
            (cons (lambda () x) (lambda (v) (set! x v)))))
        """
    )
    interp.eval("((cdr cell) 9)")
    assert interp.eval("((car cell))") == 9


def test_rest_arguments(bare_interp):
    assert bare_interp.eval_to_string("((lambda args args) 1 2 3)") == "(1 2 3)"
    assert bare_interp.eval_to_string("((lambda (a . r) r) 1 2 3)") == "(2 3)"
    assert bare_interp.eval_to_string("((lambda (a . r) r) 1)") == "()"


def test_arity_errors(bare_interp):
    with pytest.raises(ArityError):
        bare_interp.eval("((lambda (x) x))")
    with pytest.raises(ArityError):
        bare_interp.eval("((lambda (x) x) 1 2)")
    with pytest.raises(ArityError):
        bare_interp.eval("((lambda (a . r) r))")


def test_unbound_variable(bare_interp):
    with pytest.raises(UnboundVariableError):
        bare_interp.eval("nope")


def test_set_unbound_variable(bare_interp):
    with pytest.raises(UnboundVariableError):
        bare_interp.eval("(set! nope 1)")


def test_apply_non_procedure(bare_interp):
    with pytest.raises(WrongTypeError):
        bare_interp.eval("(1 2)")


def test_if_only_false_is_false(bare_interp):
    assert bare_interp.eval("(if 0 'yes 'no)").name == "yes"
    assert bare_interp.eval("(if '() 'yes 'no)").name == "yes"
    assert bare_interp.eval('(if "" (quote yes) (quote no))').name == "yes"
    assert bare_interp.eval("(if #f 'yes 'no)").name == "no"


def test_define_returns_unspecified(bare_interp):
    values = bare_interp.run("(define x 1)")
    assert values == [UNSPECIFIED]


def test_define_then_use_across_forms(bare_interp):
    bare_interp.run("(define x 10)")
    assert bare_interp.eval("(+ x 1)") == 11


def test_redefine_replaces(bare_interp):
    bare_interp.run("(define x 1) (define x 2)")
    assert bare_interp.eval("x") == 2


def test_set_global(bare_interp):
    bare_interp.run("(define x 1) (set! x 5)")
    assert bare_interp.eval("x") == 5


def test_deep_recursion_no_python_overflow(interp):
    interp.run(
        "(define (len ls) (if (null? ls) 0 (+ 1 (len (cdr ls)))))"
    )
    assert interp.eval("(len (iota 30000))") == 30000


def test_step_budget():
    from repro import Interpreter

    interp = Interpreter(max_steps=1000)
    interp.run("(define (loop) (loop))")
    with pytest.raises(StepBudgetExceeded):
        interp.eval("(loop)")


def test_apply_primitive(interp):
    assert interp.eval("(apply + 1 2 '(3 4))") == 10
    assert interp.eval("(apply list '(1 2))") is not None


def test_error_primitive(interp):
    from repro.errors import SchemeError

    with pytest.raises(SchemeError, match="boom"):
        interp.eval('(error "boom" 1 2)')


def test_display_output_captured(interp):
    interp.eval('(begin (display "hi ") (write "hi") (newline))')
    assert interp.output_text() == 'hi "hi"\n'
