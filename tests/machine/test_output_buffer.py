"""Output capture: the OutputBuffer and the io primitives."""

import pytest

from repro import Interpreter
from repro.primitives import OutputBuffer


def test_buffer_accumulates():
    buf = OutputBuffer()
    buf.write("a")
    buf.write("b")
    assert buf.getvalue() == "ab"


def test_buffer_clear():
    buf = OutputBuffer()
    buf.write("x")
    buf.clear()
    assert buf.getvalue() == ""


def test_echo_mode(capsys):
    buf = OutputBuffer(echo=True)
    buf.write("seen")
    assert capsys.readouterr().out == "seen"
    assert buf.getvalue() == "seen"


def test_echo_interpreter(capsys):
    interp = Interpreter(echo_output=True)
    interp.eval('(display "live")')
    assert "live" in capsys.readouterr().out


def test_display_vs_write_semantics(interp):
    interp.eval("(display '(1 \"two\" #\\c))")
    assert interp.output_text() == "(1 two c)"
    interp.clear_output()
    interp.eval("(write '(1 \"two\" #\\c))")
    assert interp.output_text() == '(1 "two" #\\c)'


def test_newline(interp):
    interp.eval("(begin (display 1) (newline) (display 2))")
    assert interp.output_text() == "1\n2"


def test_output_interleaves_across_pcall_branches():
    interp = Interpreter(quantum=1)
    interp.eval(
        """
        (pcall (lambda (a b) 0)
               (begin (display "a") (display "a") (display "a"))
               (begin (display "b") (display "b") (display "b")))
        """
    )
    text = interp.output_text()
    assert sorted(text) == ["a", "a", "a", "b", "b", "b"]


def test_clear_output_via_api(interp):
    interp.eval('(display "gone")')
    interp.clear_output()
    interp.eval('(display "kept")')
    assert interp.output_text() == "kept"


def test_quote_sugar_only_for_exact_shape(interp):
    # (quote x y) and (quote . x) must NOT print as 'x.
    assert interp.eval_to_string("'(quote x y)") == "(quote x y)"
    assert interp.eval_to_string("(cons 'quote 'x)") == "(quote . x)"
    # ''x evaluates to the datum (quote x), which prints as 'x.
    assert interp.eval_to_string("''x") == "'x"
