"""Numeric primitives through the interpreter."""

from fractions import Fraction

import pytest

from repro.errors import SchemeError, WrongTypeError


def test_arithmetic(interp):
    assert interp.eval("(+ 1 2 3)") == 6
    assert interp.eval("(+)") == 0
    assert interp.eval("(- 10 1 2)") == 7
    assert interp.eval("(- 5)") == -5
    assert interp.eval("(* 2 3 4)") == 24
    assert interp.eval("(*)") == 1


def test_division_exact(interp):
    assert interp.eval("(/ 1 2)") == Fraction(1, 2)
    assert interp.eval("(/ 6 3)") == 2
    assert interp.eval("(/ 2)") == Fraction(1, 2)


def test_division_inexact(interp):
    assert interp.eval("(/ 1.0 2)") == 0.5


def test_division_by_zero(interp):
    with pytest.raises(SchemeError):
        interp.eval("(/ 1 0)")


def test_comparisons_chain(interp):
    assert interp.eval("(< 1 2 3)") is True
    assert interp.eval("(< 1 3 2)") is False
    assert interp.eval("(<= 1 1 2)") is True
    assert interp.eval("(= 2 2 2)") is True
    assert interp.eval("(> 3 2 1)") is True
    assert interp.eval("(>= 3 3 1)") is True


def test_type_errors(interp):
    with pytest.raises(WrongTypeError):
        interp.eval("(+ 1 'a)")
    with pytest.raises(WrongTypeError):
        interp.eval("(+ 1 #t)")  # booleans are not numbers


def test_quotient_remainder_modulo(interp):
    assert interp.eval("(quotient 7 2)") == 3
    assert interp.eval("(quotient -7 2)") == -3
    assert interp.eval("(remainder 7 2)") == 1
    assert interp.eval("(remainder -7 2)") == -1
    assert interp.eval("(modulo -7 2)") == 1
    assert interp.eval("(modulo 7 -2)") == -1


def test_quotient_by_zero(interp):
    with pytest.raises(SchemeError):
        interp.eval("(quotient 1 0)")


def test_abs_min_max(interp):
    assert interp.eval("(abs -5)") == 5
    assert interp.eval("(min 3 1 2)") == 1
    assert interp.eval("(max 3 1 2)") == 3
    assert interp.eval("(min 1 2.0)") == 1.0  # inexactness is contagious


def test_gcd_lcm(interp):
    assert interp.eval("(gcd 12 18)") == 6
    assert interp.eval("(gcd)") == 0
    assert interp.eval("(lcm 4 6)") == 12
    assert interp.eval("(lcm 4 0)") == 0


def test_expt(interp):
    assert interp.eval("(expt 2 10)") == 1024
    assert interp.eval("(expt 2 -2)") == Fraction(1, 4)
    assert interp.eval("(expt 2.0 2)") == 4.0


def test_sqrt(interp):
    assert interp.eval("(sqrt 16)") == 4
    assert isinstance(interp.eval("(sqrt 16)"), int)
    assert interp.eval("(sqrt 2)") == pytest.approx(1.41421356)
    with pytest.raises(SchemeError):
        interp.eval("(sqrt -1)")


def test_rounding(interp):
    assert interp.eval("(floor 3/2)") == 1
    assert interp.eval("(ceiling 3/2)") == 2
    assert interp.eval("(truncate -3/2)") == -1
    assert interp.eval("(round 3/2)") == 2  # banker's: to even
    assert interp.eval("(round 5/2)") == 2
    assert interp.eval("(round 1.5)") == 2.0


def test_exactness_conversion(interp):
    assert interp.eval("(exact->inexact 1/2)") == 0.5
    assert interp.eval("(inexact->exact 0.5)") == Fraction(1, 2)


def test_number_string_conversion(interp):
    assert interp.eval('(number->string 42)') == "42"
    assert interp.eval('(string->number "42")') == 42
    assert interp.eval('(string->number "1/2")') == Fraction(1, 2)
    assert interp.eval('(string->number "nope")') is False


def test_sign_predicates(interp):
    assert interp.eval("(zero? 0)") is True
    assert interp.eval("(positive? 1)") is True
    assert interp.eval("(negative? -1)") is True
    assert interp.eval("(odd? 3)") is True
    assert interp.eval("(even? 4)") is True


def test_add1_sub1(interp):
    assert interp.eval("(add1 1)") == 2
    assert interp.eval("(sub1 1)") == 0
    assert interp.eval("(1+ 5)") == 6
    assert interp.eval("(1- 5)") == 4


def test_exact_rational_arithmetic_normalizes(interp):
    assert interp.eval("(+ 1/2 1/2)") == 1
    assert isinstance(interp.eval("(+ 1/2 1/2)"), int)
