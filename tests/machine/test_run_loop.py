"""The quantum-batched run loop and its spill protocol.

The batched loops (:func:`repro.machine.step.run_quantum`,
:func:`~repro.machine.step.run_quantum_compiled`) hold the control
registers in Python locals and only write them back to the task at
spill points.  These tests pin the observable contract:

* a capture that fires mid-quantum sees exactly the machine state a
  quantum-of-one machine would have shown it;
* ``StepBudgetExceeded`` fires at *exactly* ``max_steps`` transitions,
  batched or not, with any quantum;
* a trace hook forces a per-step spill — it observes coherent task
  registers and step counters on every transition;
* ``profile=True`` keeps the VM counters, ``profile=False`` costs
  nothing and leaves them untouched;
* the unbatched ablation driver and the PR-2 apply path it installs
  are behaviourally identical to the fast path.
"""

import pytest

from repro import Interpreter
from repro.errors import StepBudgetExceeded
from repro.machine.scheduler import ENGINES
from repro.machine.task import APPLY, EVAL, VALUE

LOOP = "(define (count n) (if (= n 0) 'done (count (- n 1))))"


# ---------------------------------------------------------------------------
# Exact budget semantics (the step_n clamp)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batched", [True, False])
@pytest.mark.parametrize("quantum", [1, 16, 4096])
@pytest.mark.parametrize("max_steps", [1, 7, 100])
def test_budget_raises_at_exactly_max_steps(batched, quantum, max_steps):
    interp = Interpreter(engine="compiled", quantum=quantum, batched=batched)
    interp.run(LOOP)
    interp.machine.steps_total = 0  # the budget covers the loop only
    interp.machine.max_steps = max_steps
    with pytest.raises(StepBudgetExceeded):
        interp.eval("(count 1000000)")
    assert interp.machine.steps_total == max_steps


@pytest.mark.parametrize("engine", ENGINES)
def test_budget_not_overshot_by_batching(engine):
    # A program that finishes within the budget must not raise even
    # when the quantum is far larger than the budget headroom.
    interp = Interpreter(engine=engine, quantum=4096, max_steps=100000)
    interp.run(LOOP)
    assert interp.eval_to_string("(count 10)") == "done"


# ---------------------------------------------------------------------------
# Mid-quantum capture sees the same machine as quantum-of-one
# ---------------------------------------------------------------------------

CAPTURE_PROGRAM = """
(define saved #f)
(define r (+ 1 (+ 2 (call/cc (lambda (k) (set! saved k) 10)))))
"""


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batched", [True, False])
def test_mid_quantum_capture_frame_chain(engine, batched):
    results = {}
    for quantum in (1, 4096):
        interp = Interpreter(engine=engine, quantum=quantum, batched=batched)
        interp.run(CAPTURE_PROGRAM)
        first = interp.eval("r")
        # Reinstating the saved continuation re-runs the additions
        # around the capture point: the frame chain spilled mid-quantum
        # must be the full (+ 1 (+ 2 _)) tower, re-binding r.
        interp.eval("(if (< r 50) (saved 40) 'already)")
        results[quantum] = (first, interp.eval("r"))
    assert results[1] == results[4096] == (13, 43)


@pytest.mark.parametrize("engine", ENGINES)
def test_multi_shot_reinstatement_mid_quantum(engine):
    interp = Interpreter(engine=engine, quantum=4096)
    interp.run(CAPTURE_PROGRAM)
    # Fire the same captured continuation twice from inside a quantum:
    # each shot re-runs the (+ 1 (+ 2 _)) tower and re-binds r.
    interp.eval("(if (< r 100) (saved 100) 'already)")
    assert interp.eval("r") == 103
    interp.eval("(if (< r 200) (saved 200) 'already)")
    assert interp.eval("r") == 203


# ---------------------------------------------------------------------------
# Trace hooks force a per-step spill
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batched", [True, False])
def test_trace_hook_sees_every_transition(engine, batched):
    interp = Interpreter(engine=engine, quantum=4096, batched=batched)
    interp.run(LOOP)
    seen = []

    def hook(machine, task):
        # The spill protocol guarantees coherent registers here: the
        # tag is a live control tag and the machine counter matches
        # the number of hook calls so far.
        assert task.tag is EVAL or task.tag is VALUE or task.tag is APPLY
        assert machine.steps_total == len(seen)
        seen.append(task.tag)

    interp.machine.steps_total = 0
    interp.machine.trace_hook = hook
    interp.eval("(count 20)")
    interp.machine.trace_hook = None
    assert len(seen) == interp.machine.steps_total
    # Engines fuse differently (codegen's self-call inlining runs two
    # loop iterations per step); any real run of the loop still takes
    # a healthy number of transitions.
    assert len(seen) > 10


def test_trace_hook_count_is_batching_invariant():
    counts = {}
    for batched in (True, False):
        interp = Interpreter(engine="compiled", quantum=16, batched=batched)
        interp.run(LOOP)
        calls = [0]

        def hook(machine, task, calls=calls):
            calls[0] += 1

        interp.machine.trace_hook = hook
        interp.eval("(count 50)")
        counts[batched] = calls[0]
    assert counts[True] == counts[False]


# ---------------------------------------------------------------------------
# VM profile counters
# ---------------------------------------------------------------------------


def test_profile_counters_track_quanta_and_spills():
    interp = Interpreter(engine="compiled", policy="serial", profile=True)
    interp.eval(LOOP)
    interp.eval("(count 100)")
    stats = interp.stats
    assert stats["vm.quanta"] > 0
    assert stats["vm.quantum_steps"] > 100
    # A tail loop of this shape runs almost entirely in registers.
    assert stats["vm.allocations_avoided"] > 100
    assert stats["vm.spill_trace"] == 0


def test_profile_off_leaves_counters_untouched():
    interp = Interpreter(engine="compiled")
    interp.eval("(+ 1 2)")
    assert all(value == 0 for value in interp.machine.vm_stats.values())
    assert "vm.quanta" not in interp.stats


def test_profile_counts_trace_spills():
    interp = Interpreter(engine="compiled", profile=True)
    interp.run(LOOP)
    interp.machine.trace_hook = lambda machine, task: None
    interp.eval("(count 10)")
    interp.machine.trace_hook = None
    assert interp.stats["vm.spill_trace"] > 0


# ---------------------------------------------------------------------------
# The unbatched ablation driver and the PR-2 apply path
# ---------------------------------------------------------------------------

APPLY_SHAPES = [
    ("(+ 1 2 3)", "6"),
    ("((lambda (a b) (- a b)) 10 4)", "6"),
    ("((lambda args (length args)) 1 2 3 4)", "4"),
    ("((lambda (a . rest) (cons a rest)) 1 2 3)", "(1 2 3)"),
    ("(apply + '(1 2 3))", "6"),
    ("(call/cc (lambda (k) (+ 1 (k 41))))", "41"),
    ("(+ 1 (prompt (+ 10 (F (lambda (k) (k (k 100)))))))", "121"),
    ("(spawn (lambda (c) 5))", "5"),
]


@pytest.mark.parametrize("source,expected", APPLY_SHAPES)
@pytest.mark.parametrize("engine", ENGINES)
def test_unbatched_apply_path_is_equivalent(engine, source, expected):
    fast = Interpreter(engine=engine, batched=True)
    slow = Interpreter(engine=engine, batched=False)
    assert fast.eval_to_string(source) == slow.eval_to_string(source) == expected


def test_unbatched_machine_installs_ablation_seam():
    from repro.machine.ablation import (
        apply_deliver_unbatched,
        apply_procedure_unbatched,
    )
    from repro.machine.step import apply_deliver, apply_procedure

    fast = Interpreter(engine="compiled", batched=True).machine
    slow = Interpreter(engine="compiled", batched=False).machine
    assert fast._apply_procedure is apply_procedure
    assert fast._apply_deliver is apply_deliver
    assert slow._apply_procedure is apply_procedure_unbatched
    assert slow._apply_deliver is apply_deliver_unbatched


def test_arity_errors_agree_across_apply_paths():
    from repro.errors import ArityError

    for batched in (True, False):
        interp = Interpreter(engine="compiled", batched=batched)
        with pytest.raises(ArityError):
            interp.eval("((lambda (a b) a) 1)")
        with pytest.raises(ArityError):
            interp.eval("((lambda (a b) a) 1 2 3)")
