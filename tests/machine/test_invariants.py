"""Tree invariants hold at every step of every kind of program."""

import pytest

from repro import Interpreter
from repro.machine.invariants import InvariantViolation, check_tree, install_checker

PROGRAMS = [
    "(+ 1 2)",
    "(let loop ([i 0]) (if (= i 50) i (loop (+ i 1))))",
    "(pcall + (* 2 3) (* 4 5))",
    "(pcall + (pcall * 1 2) (pcall - 9 (pcall + 1 2)))",
    "(spawn (lambda (c) 42))",
    "(spawn (lambda (c) (+ 1 (c (lambda (k) 9)))))",
    "(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))",
    "((spawn (lambda (c) (c (lambda (k) k)))) 5)",
    "(spawn (lambda (c) (pcall + (c (lambda (k) (k 1))) 2)))",
    "(prompt (+ 1 (F (lambda (k) (k (k 0))))))",
    "(+ 1 (call/cc (lambda (k) (k 1))))",
    "(pcall list (call/cc-leaf (lambda (k) (k 'a))) 'b)",
]


@pytest.mark.parametrize("source", PROGRAMS)
@pytest.mark.parametrize("quantum", [1, 16])
def test_invariants_hold_throughout(source, quantum):
    interp = Interpreter(quantum=quantum)
    install_checker(interp.machine)
    interp.eval(source)  # any violation raises from the hook


def test_invariants_hold_for_paper_workloads():
    interp = Interpreter(quantum=2)
    install_checker(interp.machine, every=3)
    interp.load_paper_example("search-all")
    interp.run("(define t (list->tree '(4 2 6 1 3 5 7)))")
    interp.eval("(search-all t odd?)")
    interp.load_paper_example("product-of-products-spawn")
    interp.eval("(product-of-products/spawn '(1 2 0) '(3 4 5))")


def test_invariants_hold_under_random_schedules():
    for seed in range(5):
        interp = Interpreter(policy="random", seed=seed)
        install_checker(interp.machine)
        interp.load_paper_example("parallel-or")
        interp.eval("(parallel-or #f (+ 1 2))")


def test_check_tree_counts_entities():
    interp = Interpreter()
    counts = []

    def hook(machine, task):
        counts.append(check_tree(machine))

    interp.machine.trace_hook = hook
    interp.eval("(pcall + 1 2)")
    # At fork time: 1 root label + 1 join + 3 branch tasks = 5.
    assert max(counts) == 5


def test_violation_detected_on_corrupted_tree():
    """Sanity-check the checker itself: corrupt a child pointer and
    expect a complaint."""
    interp = Interpreter()
    violations = []

    def hook(machine, task):
        root = machine.root_label_link
        if root is not None and root.child is not None:
            # Detach the child's upward pointer — an I1 violation.
            from repro.machine.task import Task
            from repro.machine.links import HaltLink

            child = root.child
            if isinstance(child, Task) and not violations:
                original = child.link
                child.link = HaltLink(machine)
                try:
                    check_tree(machine)
                except InvariantViolation:
                    violations.append(True)
                finally:
                    child.link = original

    interp.machine.trace_hook = hook
    interp.eval("(+ 1 2)")
    assert violations


def test_checker_every_parameter():
    interp = Interpreter()
    install_checker(interp.machine, every=10)
    interp.eval("(let loop ([i 0]) (if (= i 100) i (loop (+ i 1))))")
