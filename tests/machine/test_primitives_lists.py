"""List and predicate primitives through the interpreter."""

import pytest

from repro.errors import SchemeError, WrongTypeError


def test_cons_car_cdr(interp):
    assert interp.eval("(car (cons 1 2))") == 1
    assert interp.eval("(cdr (cons 1 2))") == 2


def test_car_of_non_pair(interp):
    with pytest.raises(WrongTypeError):
        interp.eval("(car 5)")
    with pytest.raises(WrongTypeError):
        interp.eval("(car '())")


def test_cxr_compositions(interp):
    assert interp.eval("(cadr '(1 2 3))") == 2
    assert interp.eval("(caddr '(1 2 3))") == 3
    assert interp.eval("(cddr '(1 2 3))").car == 3
    assert interp.eval("(caar '((1) 2))") == 1


def test_set_car_cdr(interp):
    interp.run("(define p (cons 1 2))")
    interp.eval("(set-car! p 9)")
    interp.eval("(set-cdr! p 8)")
    assert interp.eval_to_string("p") == "(9 . 8)"


def test_list_and_length(interp):
    assert interp.eval("(length (list 1 2 3))") == 3
    assert interp.eval("(length '())") == 0


def test_append_reverse(interp):
    assert interp.eval_to_string("(append '(1) '(2 3) '(4))") == "(1 2 3 4)"
    assert interp.eval_to_string("(reverse '(1 2 3))") == "(3 2 1)"


def test_list_tail_ref(interp):
    assert interp.eval_to_string("(list-tail '(1 2 3 4) 2)") == "(3 4)"
    assert interp.eval("(list-ref '(1 2 3) 1)") == 2


def test_member_family(interp):
    assert interp.eval_to_string("(memq 'b '(a b c))") == "(b c)"
    assert interp.eval("(memq 'z '(a b))") is False
    assert interp.eval_to_string("(memv 2 '(1 2 3))") == "(2 3)"
    assert interp.eval_to_string("(member \"x\" '(\"w\" \"x\"))") == '("x")'


def test_assoc_family(interp):
    assert interp.eval_to_string("(assq 'b '((a 1) (b 2)))") == "(b 2)"
    assert interp.eval("(assq 'z '((a 1)))") is False
    assert interp.eval_to_string("(assv 2 '((1 one) (2 two)))") == "(2 two)"
    assert interp.eval_to_string('(assoc "k" \'(("k" v)))') == '("k" v)'


def test_vector_list_conversion(interp):
    assert interp.eval_to_string("(list->vector '(1 2))") == "#(1 2)"
    assert interp.eval_to_string("(vector->list #(1 2))") == "(1 2)"


def test_last_pair(interp):
    assert interp.eval_to_string("(last-pair '(1 2 3))") == "(3)"


def test_iota(interp):
    assert interp.eval_to_string("(iota 3)") == "(0 1 2)"
    assert interp.eval_to_string("(iota 3 5)") == "(5 6 7)"
    assert interp.eval_to_string("(iota 3 0 10)") == "(0 10 20)"
    with pytest.raises(SchemeError):
        interp.eval("(iota -1)")


def test_type_predicates(interp):
    checks = [
        ("(pair? '(1))", True),
        ("(pair? '())", False),
        ("(null? '())", True),
        ("(null? '(1))", False),
        ("(list? '(1 2))", True),
        ("(list? (cons 1 2))", False),
        ("(symbol? 'a)", True),
        ("(symbol? \"a\")", False),
        ("(number? 1)", True),
        ("(number? #t)", False),
        ("(integer? 2)", True),
        ("(integer? 2.0)", True),
        ("(integer? 2.5)", False),
        ("(rational? 1/2)", True),
        ("(exact? 1/2)", True),
        ("(exact? 0.5)", False),
        ("(inexact? 0.5)", True),
        ("(string? \"s\")", True),
        ("(char? #\\a)", True),
        ("(vector? #(1))", True),
        ("(boolean? #f)", True),
        ("(boolean? 0)", False),
        ("(procedure? car)", True),
        ("(procedure? (lambda (x) x))", True),
        ("(procedure? 'car)", False),
        ("(not #f)", True),
        ("(not 0)", False),
    ]
    for source, expected in checks:
        assert interp.eval(source) is expected, source


def test_procedure_predicate_on_control_values(interp):
    assert interp.eval("(procedure? (spawn (lambda (c) (c (lambda (k) k)))))") is True
    assert (
        interp.eval("(spawn (lambda (c) (procedure? c)))") is True
    )  # controllers are procedures


def test_equality_predicates(interp):
    assert interp.eval("(eq? 'a 'a)") is True
    assert interp.eval("(eqv? 1/2 1/2)") is True
    assert interp.eval("(equal? '(1 (2)) '(1 (2)))") is True
    assert interp.eval("(equal? '(1) '(2))") is False
