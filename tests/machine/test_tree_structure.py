"""Process-tree structure: inspect the tree during execution and test
the capture algebra directly."""

from repro import Interpreter
from repro.machine.inspect import render_tree, tree_summary
from repro.machine.links import Join, LabelLink
from repro.machine.task import Task
from repro.machine.tree import (
    Capture,
    capture_subtree,
    collect_subtree,
    count_control_points,
    find_label_link,
)


def snapshot_when(source, predicate):
    """Run ``source``; return the first tree summary for which
    ``predicate(summary)`` holds (or None)."""
    interp = Interpreter(quantum=1)
    hit = {}

    def hook(machine, task):
        if hit:
            return
        summary = tree_summary(machine.root_entity)
        if predicate(summary):
            hit["summary"] = summary
            hit["render"] = render_tree(machine)

    interp.machine.trace_hook = hook
    interp.eval(source)
    return hit


def test_pcall_creates_join_with_branches():
    hit = snapshot_when("(pcall + (* 1 2) (* 3 4))", lambda s: s["joins"] >= 1)
    assert hit
    assert hit["summary"]["joins"] == 1
    # Three branches: the operator expression is branch 0.
    assert hit["summary"]["tasks"] == 3
    assert "join" in hit["render"]


def test_spawn_creates_label():
    hit = snapshot_when(
        "(spawn (lambda (c) (+ 1 1)))", lambda s: s["labels"] >= 2
    )  # the implicit root label + the spawn's label
    assert hit
    assert hit["summary"]["labels"] == 2


def test_nested_spawn_labels_stack():
    hit = snapshot_when(
        "(spawn (lambda (a) (spawn (lambda (b) (+ 1 1)))))",
        lambda s: s["labels"] >= 3,
    )
    assert hit


def test_prompt_renders_distinctly():
    hit = snapshot_when("(prompt (+ 1 2))", lambda s: s["prompts"] >= 1)
    assert hit
    assert "prompt" in hit["render"]


def test_label_removed_after_normal_return():
    """After a spawned process returns, its label is out of the tree."""
    interp = Interpreter(quantum=1)
    seen_after_return = []

    def hook(machine, task):
        summary = tree_summary(machine.root_entity)
        seen_after_return.append(summary["labels"])

    interp.machine.trace_hook = hook
    interp.eval("(begin (spawn (lambda (c) 1)) (+ 2 3))")
    # At some point the spawn label existed (2 labels incl. root); it
    # is gone again before the end (the final steps run after even the
    # root label has popped, hence <= 1).
    assert max(seen_after_return) == 2
    assert seen_after_return[-1] <= 1
    # The label count drops back to 1 while work remains (the `(+ 2 3)`
    # steps) — i.e. the pop happened at process return, not at halt.
    after_peak = seen_after_return[seen_after_return.index(2) :]
    assert 1 in after_peak


def test_capture_counts_control_points():
    """Drive the capture machinery directly through Scheme and check
    the package's control-point count."""
    interp = Interpreter()
    interp.run(
        """
        (define k
          (spawn (lambda (c)
                   (pcall +
                          (c (lambda (kk) kk))
                          (+ 1 1)))))
        """
    )
    k = interp.eval("k")
    from repro.control.spawn import ProcessContinuation

    assert isinstance(k, ProcessContinuation)
    # Captured subtree: the spawn label + the pcall join = 2 control points.
    assert k.control_points() == 2
    # One suspended sibling branch + the hole task.
    assert k.capture.task_count() == 2


def test_controller_use_between_capture_and_reinstatement_is_invalid():
    """Call-by-value evaluates the argument of ``(k ...)`` before the
    reinstatement happens, so a controller application inside that
    argument finds no live root — its root was captured away."""
    import pytest

    from repro.errors import DeadControllerError

    interp = Interpreter()
    with pytest.raises(DeadControllerError):
        interp.eval(
            """
            (spawn (lambda (c)
                     (+ 100
                        (c (lambda (k)
                             (+ 1 (k (+ 10 (c (lambda (k2) 7))))))))))
            """
        )


def test_controller_captures_nearest_of_multiple_instances():
    """The paper, Section 7: 'the controller removes only the stacks
    down to and including the topmost labeled stack' when the label
    occurs more than once.  Invoke k inside the reinstated process so
    two instances of the root are live, then capture: the value must
    flow to the context just above the *nearest* instance."""
    interp = Interpreter()
    interp.run(
        """
        (define k
          (spawn (lambda (c)
                   (let ([x (c (lambda (kk) kk))])
                     (cond
                       [(eq? x 'go) (list 'outer (+ 1000 (k 42)))]
                       [else (c (lambda (kk) 7))])))))
        """
    )
    result = interp.eval_to_string("(k 'go)")
    # Nearest-instance capture delivers 7 into (+ 1000 _) = 1007, and
    # the outer process completes normally: (outer 1007).  A
    # farthest-instance capture would have returned bare 7.
    assert result == "(outer 1007)"


def test_collect_subtree_counts():
    interp = Interpreter()
    captured = {}

    def hook(machine, task):
        if captured:
            return
        root = machine.root_label_link
        if root is not None and root.child is not None:
            points, tasks = collect_subtree(root)
            captured["points"] = len(points)
            captured["tasks"] = len(tasks)

    interp.machine.trace_hook = hook
    interp.eval("(+ 1 1)")
    assert captured["points"] == 1  # the root label itself
    assert captured["tasks"] == 1


def test_render_tree_on_live_machine():
    interp = Interpreter(quantum=1)
    renders = []

    def hook(machine, task):
        if len(renders) < 3:
            renders.append(render_tree(machine))

    interp.machine.trace_hook = hook
    interp.eval("(pcall + 1 2)")
    assert any("label root" in r for r in renders)
