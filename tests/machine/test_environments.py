"""Environment chain and global-table behaviour (unit level)."""

import pytest

from repro.datum import intern
from repro.errors import UnboundVariableError
from repro.machine.environment import UNBOUND, Environment, GlobalEnv, SlotRib
from repro.machine.values import Closure, Primitive, check_arity
from repro.errors import ArityError


def test_global_define_lookup():
    genv = GlobalEnv()
    genv.define(intern("x"), 1)
    assert genv.lookup(intern("x")) == 1
    assert intern("x") in genv


def test_global_lookup_unbound():
    with pytest.raises(UnboundVariableError, match="ghost"):
        GlobalEnv().lookup(intern("ghost"))


def test_global_assign_requires_binding():
    genv = GlobalEnv()
    with pytest.raises(UnboundVariableError):
        genv.assign(intern("y"), 1)
    genv.define(intern("y"), 1)
    genv.assign(intern("y"), 2)
    assert genv.lookup(intern("y")) == 2


def test_global_iteration():
    genv = GlobalEnv()
    genv.define(intern("a"), 1)
    genv.define(intern("b"), 2)
    assert {s.name for s in genv} == {"a", "b"}


def test_environment_shadowing():
    genv = GlobalEnv()
    genv.define(intern("x"), "global")
    top = Environment.toplevel(genv)
    inner = top.extend((intern("x"),), ["local"])
    assert inner.lookup(intern("x")) == "local"
    assert top.lookup(intern("x")) == "global"


def test_environment_falls_through_to_global():
    genv = GlobalEnv()
    genv.define(intern("g"), 42)
    env = Environment.toplevel(genv).extend((intern("x"),), [1])
    assert env.lookup(intern("g")) == 42


def test_environment_assign_innermost_binding():
    genv = GlobalEnv()
    top = Environment.toplevel(genv)
    outer = top.extend((intern("x"),), [1])
    inner = outer.extend((intern("x"),), [2])
    inner.assign(intern("x"), 99)
    assert inner.lookup(intern("x")) == 99
    assert outer.lookup(intern("x")) == 1


def test_environment_assign_falls_through_to_global():
    genv = GlobalEnv()
    genv.define(intern("g"), 0)
    env = Environment.toplevel(genv).extend((intern("x"),), [1])
    env.assign(intern("g"), 7)
    assert genv.lookup(intern("g")) == 7


def test_deep_environment_chain():
    genv = GlobalEnv()
    env = Environment.toplevel(genv)
    for i in range(5000):
        env = env.extend((intern(f"v{i}"),), [i])
    assert env.lookup(intern("v0")) == 0
    assert env.lookup(intern("v4999")) == 4999


# -- slot ribs and global cells (the resolved representation) -------------


def test_global_cell_interning():
    genv = GlobalEnv()
    cell = genv.cell(intern("x"))
    assert genv.cell(intern("x")) is cell  # interned, not re-made
    assert cell.value is UNBOUND
    genv.define(intern("x"), 5)
    assert cell.value == 5  # define writes through the same cell
    genv.assign(intern("x"), 6)
    assert cell.value == 6


def test_global_cell_lookup_of_interned_but_undefined():
    genv = GlobalEnv()
    genv.cell(intern("later"))  # forward reference interned the cell
    with pytest.raises(UnboundVariableError, match="later"):
        genv.lookup(intern("later"))
    assert intern("later") not in genv  # unbound cells don't count


def test_slot_rib_chain_walk():
    outer = SlotRib([1, 2], None)
    inner = SlotRib([3], outer)
    assert inner.values[0] == 3
    assert inner.parent.values == [1, 2]
    assert outer.parent is None


def test_slot_rib_is_shared_not_copied():
    rib = SlotRib([0], None)
    alias = SlotRib([1], rib)
    rib.values[0] = 99
    assert alias.parent.values[0] == 99


# -- value helpers --------------------------------------------------------


def test_check_arity_messages():
    with pytest.raises(ArityError, match="expected 2 argument"):
        check_arity("f", 1, 2, 2)
    with pytest.raises(ArityError, match="at least 1"):
        check_arity("f", 0, 1, None)
    with pytest.raises(ArityError, match="1 to 3"):
        check_arity("f", 4, 1, 3)
    check_arity("f", 2, 1, 3)  # in range: no raise


def test_primitive_apply_checks_arity():
    prim = Primitive("p", lambda a: a, 1, 1)
    assert prim.apply([5]) == 5
    with pytest.raises(ArityError):
        prim.apply([])


def test_closure_repr_and_arity():
    from repro.ir import Const
    genv = GlobalEnv()
    env = Environment.toplevel(genv)
    closure = Closure((intern("a"),), None, Const(1), env, name="myproc")
    assert "myproc" in repr(closure)
    with pytest.raises(ArityError, match="myproc"):
        closure.check_arity(0)


def test_closure_rest_arity_unbounded():
    from repro.ir import Const
    genv = GlobalEnv()
    env = Environment.toplevel(genv)
    closure = Closure((intern("a"),), intern("rest"), Const(1), env)
    closure.check_arity(1)
    closure.check_arity(10)
    with pytest.raises(ArityError):
        closure.check_arity(0)
