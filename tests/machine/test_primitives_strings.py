"""String, char, vector and misc primitives."""

import pytest

from repro.datum import Char
from repro.errors import SchemeError, WrongTypeError


def test_string_length_ref(interp):
    assert interp.eval('(string-length "hello")') == 5
    assert interp.eval('(string-ref "abc" 1)') == Char("b")
    with pytest.raises(SchemeError):
        interp.eval('(string-ref "abc" 5)')


def test_substring(interp):
    assert interp.eval('(substring "hello" 1 3)') == "el"
    with pytest.raises(SchemeError):
        interp.eval('(substring "hi" 0 5)')


def test_string_append(interp):
    assert interp.eval('(string-append "a" "b" "c")') == "abc"
    assert interp.eval("(string-append)") == ""


def test_string_symbol_conversion(interp):
    assert interp.eval('(string->symbol "abc")').name == "abc"
    assert interp.eval("(symbol->string 'abc)") == "abc"


def test_string_list_conversion(interp):
    assert interp.eval_to_string('(string->list "ab")') == "(#\\a #\\b)"
    assert interp.eval("(list->string (list #\\a #\\b))") == "ab"
    assert interp.eval("(string #\\x #\\y)") == "xy"


def test_string_comparisons(interp):
    assert interp.eval('(string=? "a" "a")') is True
    assert interp.eval('(string<? "a" "b" "c")') is True
    assert interp.eval('(string>? "b" "a")') is True
    assert interp.eval('(string<=? "a" "a")') is True
    assert interp.eval('(string>=? "b" "b")') is True


def test_char_comparisons(interp):
    assert interp.eval("(char=? #\\a #\\a)") is True
    assert interp.eval("(char<? #\\a #\\b)") is True
    assert interp.eval("(char>? #\\b #\\a)") is True


def test_char_conversions(interp):
    assert interp.eval("(char->integer #\\A)") == 65
    assert interp.eval("(integer->char 65)") == Char("A")
    assert interp.eval("(char-upcase #\\a)") == Char("A")
    assert interp.eval("(char-downcase #\\A)") == Char("a")


def test_char_predicates(interp):
    assert interp.eval("(char-alphabetic? #\\a)") is True
    assert interp.eval("(char-numeric? #\\5)") is True
    assert interp.eval("(char-whitespace? #\\space)") is True


def test_integer_to_char_bad_codepoint(interp):
    with pytest.raises(SchemeError):
        interp.eval("(integer->char -1)")


def test_gensym_primitive(interp):
    assert interp.eval("(eq? (gensym) (gensym))") is False
    assert interp.eval("(symbol? (gensym 'tmp))") is True


def test_vectors(interp):
    interp.run("(define v (make-vector 3 0))")
    assert interp.eval("(vector-length v)") == 3
    interp.eval("(vector-set! v 1 9)")
    assert interp.eval("(vector-ref v 1)") == 9
    assert interp.eval_to_string("(vector 1 2)") == "#(1 2)"
    interp.eval("(vector-fill! v 7)")
    assert interp.eval_to_string("v") == "#(7 7 7)"


def test_vector_copy_is_fresh(interp):
    interp.run("(define v #(1 2)) (define w (vector-copy v))")
    interp.eval("(vector-set! w 0 9)")
    assert interp.eval("(vector-ref v 0)") == 1


def test_vector_bounds(interp):
    with pytest.raises(SchemeError):
        interp.eval("(vector-ref #(1) 3)")


def test_void(interp):
    from repro.datum import UNSPECIFIED

    assert interp.eval("(void)") is UNSPECIFIED
    assert interp.eval("(void 1 2 3)") is UNSPECIFIED


def test_wrong_types(interp):
    with pytest.raises(WrongTypeError):
        interp.eval("(string-length 5)")
    with pytest.raises(WrongTypeError):
        interp.eval("(char->integer 5)")
    with pytest.raises(WrongTypeError):
        interp.eval("(vector-ref '(1) 0)")
