"""The machine's incremental evaluation API (begin_eval / begin_apply /
step_n / finish) — what machine engines are built on."""

import pytest

from repro import Interpreter
from repro.errors import MachineError
from repro.expander import ExpandEnv, expand_program
from repro.reader import read_all


def node_for(source):
    nodes = expand_program(read_all(source), ExpandEnv())
    assert len(nodes) == 1
    return nodes[0]


def test_begin_then_finish(interp):
    machine = interp.machine
    machine.begin_eval(node_for("(+ 20 22)"))
    assert machine.finish() == 42


def test_step_n_partial_progress(interp):
    machine = interp.machine
    machine.begin_eval(node_for("(let loop ([i 0]) (if (= i 200) i (loop (+ i 1))))"))
    assert machine.step_n(10) is False  # far from done
    assert machine.step_n(5) is False
    while not machine.step_n(500):
        pass
    assert machine.finish() == 200


def test_step_n_returns_true_exactly_at_halt(interp):
    machine = interp.machine
    machine.begin_eval(node_for("7"))
    halted = machine.step_n(100)
    assert halted is True
    assert machine.finish() == 7


def test_begin_apply_runs_closure(interp):
    double = interp.eval("(lambda (x) (* 2 x))")
    machine = interp.machine
    machine.begin_apply(double, [21])
    assert machine.finish() == 42


def test_begin_apply_zero_args(interp):
    thunk = interp.eval("(lambda () 'thunked)")
    machine = interp.machine
    machine.begin_apply(thunk, [])
    assert machine.finish().name == "thunked"


def test_interleave_two_machines():
    """Two machines over independent globals stepped alternately —
    cooperative multitasking at the host level."""
    a, b = Interpreter(), Interpreter()
    a.machine.begin_eval(node_for("(let l ([i 0]) (if (= i 50) 'a (l (+ i 1))))"))
    b.machine.begin_eval(node_for("(let l ([i 0]) (if (= i 9) 'b (l (+ i 1))))"))
    done_a = done_b = False
    order = []
    while not (done_a and done_b):
        if not done_a and a.machine.step_n(20):
            done_a = True
            order.append("a")
        if not done_b and b.machine.step_n(20):
            done_b = True
            order.append("b")
    assert order == ["b", "a"]  # the shorter loop halts first
    assert a.machine.finish().name == "a"
    assert b.machine.finish().name == "b"


def test_step_n_raises_on_deadlock(interp):
    machine = interp.machine
    machine.begin_eval(
        node_for(
            """
            (pcall +
                   (call/cc-leaf (lambda (k) (k 1)))
                   1)
            """
        )
    )
    # This one is fine — sanity that normal pcall finishes...
    while not machine.step_n(100):
        pass
    assert machine.finish() == 2


def test_incremental_respects_max_steps():
    from repro.errors import StepBudgetExceeded

    interp = Interpreter(max_steps=50)
    machine = interp.machine
    machine.begin_eval(node_for("(let l () (l))"))
    with pytest.raises(StepBudgetExceeded):
        while not machine.step_n(30):
            pass
