"""Shared fixtures.

``interp`` gives each test a fresh interpreter with the prelude loaded;
``bare_interp`` skips the prelude (faster, for machine-level tests);
``paper_interp`` pre-loads every paper definition.
"""

from __future__ import annotations

import pytest

from repro import Interpreter


@pytest.fixture
def interp() -> Interpreter:
    return Interpreter()


@pytest.fixture
def bare_interp() -> Interpreter:
    return Interpreter(prelude=False)


@pytest.fixture
def serial_interp() -> Interpreter:
    return Interpreter(policy="serial")


@pytest.fixture
def paper_interp() -> Interpreter:
    i = Interpreter()
    for name in (
        "make-cell",
        "product0",
        "product-callcc",
        "product-callcc-leaf",
        "product-of-products-callcc",
        "spawn/exit",
        "sum-of-products",
        "product-of-products-spawn",
        "first-true",
        "parallel-or",
        "parallel-search",
        "search-all",
    ):
        i.load_paper_example(name)
    return i
