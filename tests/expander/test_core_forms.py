"""Core form expansion: quote, lambda, if, set!, begin, define, pcall."""

import pytest

from repro.datum import UNSPECIFIED, intern
from repro.errors import ExpandError
from repro.expander import ExpandEnv, expand_program
from repro.ir import (
    App,
    Const,
    DefineTop,
    If,
    Lambda,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.reader import read_all


def expand1(source):
    nodes = expand_program(read_all(source), ExpandEnv())
    assert len(nodes) == 1
    return nodes[0]


def test_self_evaluating_constants():
    assert expand1("42") == Const(42)
    assert expand1("#t") == Const(True)
    assert expand1('"hi"') == Const("hi")


def test_variable():
    assert expand1("x") == Var(intern("x"))


def test_quote():
    node = expand1("'abc")
    assert isinstance(node, Const)
    assert node.value is intern("abc")


def test_quote_arity():
    with pytest.raises(ExpandError):
        expand1("(quote a b)")


def test_empty_combination_rejected():
    with pytest.raises(ExpandError):
        expand1("()")


def test_lambda_fixed():
    node = expand1("(lambda (a b) a)")
    assert isinstance(node, Lambda)
    assert [p.name for p in node.params] == ["a", "b"]
    assert node.rest is None


def test_lambda_rest_only():
    node = expand1("(lambda args args)")
    assert node.params == ()
    assert node.rest is intern("args")


def test_lambda_dotted():
    node = expand1("(lambda (a . rest) a)")
    assert [p.name for p in node.params] == ["a"]
    assert node.rest is intern("rest")


def test_lambda_multi_body_becomes_seq():
    node = expand1("(lambda () 1 2)")
    assert isinstance(node.body, Seq)


def test_lambda_duplicate_params():
    with pytest.raises(ExpandError):
        expand1("(lambda (a a) a)")


def test_lambda_needs_body():
    with pytest.raises(ExpandError):
        expand1("(lambda (a))")


def test_if_two_armed():
    node = expand1("(if 1 2 3)")
    assert node == If(Const(1), Const(2), Const(3))


def test_if_one_armed():
    node = expand1("(if 1 2)")
    assert node.els == Const(UNSPECIFIED)


def test_if_arity():
    with pytest.raises(ExpandError):
        expand1("(if 1)")
    with pytest.raises(ExpandError):
        expand1("(if 1 2 3 4)")


def test_set_bang():
    node = expand1("(set! x 1)")
    assert node == SetBang(intern("x"), Const(1))


def test_set_bang_malformed():
    with pytest.raises(ExpandError):
        expand1("(set! (x) 1)")
    with pytest.raises(ExpandError):
        expand1("(set! x)")


def test_begin_single_collapses():
    assert expand1("(begin 1)") == Const(1)


def test_begin_multi_splices_at_top_level():
    nodes = expand_program(read_all("(begin 1 2 3)"), ExpandEnv())
    assert nodes == [Const(1), Const(2), Const(3)]


def test_begin_multi_is_seq_in_expression_position():
    node = expand1("(if #t (begin 1 2 3) 0)")
    assert isinstance(node.then, Seq)
    assert len(node.then.exprs) == 3


def test_application():
    node = expand1("(f 1 2)")
    assert isinstance(node, App)
    assert node.fn == Var(intern("f"))
    assert node.args == (Const(1), Const(2))


def test_define_top_level_value():
    nodes = expand_program(read_all("(define x 1)"), ExpandEnv())
    assert nodes == [DefineTop(intern("x"), Const(1))]


def test_define_procedure_shorthand():
    node = expand_program(read_all("(define (f a) a)"), ExpandEnv())[0]
    assert isinstance(node, DefineTop)
    assert isinstance(node.expr, Lambda)
    assert node.expr.name == "f"


def test_define_procedure_dotted():
    node = expand_program(read_all("(define (f a . r) r)"), ExpandEnv())[0]
    assert node.expr.rest is intern("r")


def test_define_illegal_in_expression_position():
    with pytest.raises(ExpandError):
        expand1("(if (define x 1) 2 3)")


def test_top_level_begin_splices():
    nodes = expand_program(read_all("(begin (define x 1) (define y 2))"), ExpandEnv())
    assert len(nodes) == 2
    assert all(isinstance(n, DefineTop) for n in nodes)


def test_pcall():
    node = expand1("(pcall + 1 2)")
    assert isinstance(node, Pcall)
    assert len(node.exprs) == 3


def test_pcall_needs_operator():
    with pytest.raises(ExpandError):
        expand1("(pcall)")


def test_prompt_lowers_to_call_with_prompt():
    node = expand1("(prompt 1 2)")
    assert isinstance(node, App)
    assert node.fn == Var(intern("call-with-prompt"))
    assert isinstance(node.args[0], Lambda)


def test_lexical_shadowing_of_special_form():
    # A lambda-bound `if` is a variable, not syntax.
    node = expand1("(lambda (if) (if 1 2 3))")
    assert isinstance(node.body, App)


def test_unquote_outside_quasiquote():
    with pytest.raises(ExpandError):
        expand1(",x")
