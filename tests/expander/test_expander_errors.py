"""Error reporting in the expander: malformed forms fail loudly and
specifically, never silently."""

import pytest

from repro.errors import ExpandError
from repro.expander import ExpandEnv, expand_program
from repro.reader import read_all


def expand(source):
    return expand_program(read_all(source), ExpandEnv())


BAD_FORMS = [
    # (source, match fragment)
    ("(lambda)", "lambda"),
    ("(lambda (x))", "body"),
    ("(lambda (1) x)", "formal"),
    ("(lambda (x . 1) x)", "rest"),
    ("(if)", "if"),
    ("(set!)", "set!"),
    ("(set! 1 2)", "set!"),
    ("(if #t (begin) 2)", "begin"),  # empty begin in expression position
    ("(quote)", "quote"),
    ("(quote a b)", "quote"),
    ("(let)", "let"),
    ("(let x)", "let"),
    ("(let ((x)) x)", "binding"),
    ("(let ((1 2)) 3)", "binding"),
    ("(let* ((x)) x)", "binding"),
    ("(letrec ((x)) x)", "binding"),
    ("(cond ())", "cond"),
    ("(cond (else 1) (2 3))", "else"),
    ("(cond (1 => f g))", "=>"),
    ("(case)", "case"),
    ("(case 1 ((2)))", "case"),
    ("(case 1 (else 2) ((3) 4))", "else"),
    ("(when 1)", "when"),
    ("(unless 1)", "unless"),
    ("(do)", "do"),
    ("(do ((x 1 2 3)) (#t))", "do"),
    ("(do ((x 1)))", "do"),
    ("(pcall)", "pcall"),
    ("(prompt)", "prompt"),
    ("(define)", "define"),
    ("(define 1 2)", "define"),
    ("(define (1 x) x)", "define"),
    ("(define ((f)) 1)", "define"),
    ("(define x 1 2)", "define"),
    ("(extend-syntax)", "extend-syntax"),
    ("(extend-syntax (1) ((p) t))", "extend-syntax"),
    ("(extend-syntax (m))", "clause"),
    ("(define-syntax)", "define-syntax"),
    ("(define-syntax m (lambda (x) x))", "syntax-rules"),
    ("(define-syntax m (syntax-rules))", "syntax-rules"),
    ("(define-syntax m (syntax-rules (1) ((p) t)))", "literals"),
    ("(quasiquote)", "quasiquote"),
    (",x", "unquote"),
    (",@x", "unquote"),
    ("()", "combination"),
]


@pytest.mark.parametrize("source,fragment", BAD_FORMS, ids=[s for s, _ in BAD_FORMS])
def test_malformed_form_raises_with_context(source, fragment):
    with pytest.raises(ExpandError) as excinfo:
        expand(source)
    assert fragment.lower() in str(excinfo.value).lower()


def test_improper_application_rejected():
    with pytest.raises(ExpandError):
        expand("(f 1 . 2)")


def test_deep_error_inside_nested_form():
    with pytest.raises(ExpandError):
        expand("(let ([x 1]) (cond (else 1) (2 3)))")


def test_good_forms_near_bad_ones_still_work(interp):
    # An error in one run leaves the interpreter usable.
    with pytest.raises(ExpandError):
        interp.run("(lambda)")
    assert interp.eval("(+ 1 2)") == 3
