"""The IR layer: free variables and the pretty printer."""

from repro.datum import UNSPECIFIED, intern
from repro.expander import ExpandEnv, expand_program
from repro.ir import (
    App,
    Const,
    If,
    Lambda,
    Pcall,
    Seq,
    SetBang,
    Var,
    free_variables,
    pretty,
)
from repro.reader import read_all


def expand1(source):
    nodes = expand_program(read_all(source), ExpandEnv())
    assert len(nodes) == 1
    return nodes[0]


class TestFreeVariables:
    def test_constant_has_none(self):
        assert free_variables(Const(1)) == frozenset()

    def test_variable_is_free(self):
        assert free_variables(Var(intern("x"))) == {intern("x")}

    def test_lambda_binds(self):
        node = expand1("(lambda (x) (x y))")
        assert free_variables(node) == {intern("y")}

    def test_rest_parameter_binds(self):
        node = expand1("(lambda (a . rest) (cons a rest))")
        assert free_variables(node) == {intern("cons")}

    def test_set_target_is_free(self):
        node = expand1("(set! x 1)")
        assert intern("x") in free_variables(node)

    def test_set_target_bound_by_lambda(self):
        node = expand1("(lambda (x) (set! x 1))")
        assert free_variables(node) == frozenset()

    def test_if_and_seq(self):
        node = expand1("(if a (begin b c) d)")
        assert free_variables(node) == {intern(n) for n in "abcd"}

    def test_pcall_subexpressions(self):
        node = expand1("(pcall f x y)")
        assert free_variables(node) == {intern("f"), intern("x"), intern("y")}

    def test_let_lowering_binds(self):
        node = expand1("(let ([x 1]) (+ x y))")
        assert free_variables(node) == {intern("+"), intern("y")}

    def test_deep_ir_no_recursion_error(self):
        node = expand1("(+ " + " ".join(["x"] * 5000) + ")")
        assert free_variables(node) == {intern("+"), intern("x")}


class TestPretty:
    def test_atoms(self):
        assert pretty(Const(42)) == "42"
        assert pretty(Var(intern("v"))) == "v"
        assert pretty(Const(UNSPECIFIED)) == "#<unspecified>"

    def test_quoted_constants(self):
        node = expand1("'(a b)")
        assert pretty(node) == "'(a b)"
        assert pretty(expand1("'sym")) == "'sym"

    def test_lambda_formals(self):
        assert pretty(expand1("(lambda (a b) a)")) == "(lambda (a b) a)"
        assert pretty(expand1("(lambda args args)")) == "(lambda args args)"
        assert pretty(expand1("(lambda (a . r) r)")) == "(lambda (a . r) r)"

    def test_roundtrip_through_reader(self):
        """pretty output re-reads and re-expands to the same IR."""
        for source in [
            "(lambda (x) (if x 1 2))",
            "((lambda (f) (f 1 2)) +)",
            "(pcall + 1 (begin 2 3))",
            "(set! x (lambda () 9))",
        ]:
            node = expand1(source)
            again = expand1(pretty(node))
            assert pretty(again) == pretty(node)

    def test_seq_and_pcall_forms(self):
        assert pretty(expand1("(if #t (begin 1 2) 3)")) == "(if #t (begin 1 2) 3)"
        assert pretty(expand1("(pcall f 1)")) == "(pcall f 1)"

    def test_define_top(self):
        node = expand_program(read_all("(define x 1)"), ExpandEnv())[0]
        assert pretty(node) == "(define x 1)"


class TestNodeEquality:
    def test_structural_equality(self):
        assert expand1("(+ 1 2)") == expand1("(+ 1 2)")
        assert expand1("(+ 1 2)") != expand1("(+ 1 3)")

    def test_lambda_name_not_part_of_identity(self):
        named = Lambda((intern("x"),), None, Var(intern("x")), name="f")
        anonymous = Lambda((intern("x"),), None, Var(intern("x")))
        assert named == anonymous  # name is compare=False metadata
