"""Internal defines at the head of bodies."""

import pytest

from repro.errors import ExpandError


def test_single_internal_define(interp):
    assert interp.eval("((lambda () (define x 5) (+ x 1)))") == 6


def test_internal_define_procedure_shorthand(interp):
    assert interp.eval("((lambda () (define (f a) (* a 2)) (f 4)))") == 8


def test_mutually_recursive_internal_defines(interp):
    assert (
        interp.eval(
            """
            ((lambda ()
               (define (even? n) (if (= n 0) #t (odd? (- n 1))))
               (define (odd? n) (if (= n 0) #f (even? (- n 1))))
               (even? 9)))
            """
        )
        is False
    )


def test_internal_define_in_let_body(interp):
    assert interp.eval("(let ([a 1]) (define b 2) (+ a b))") == 3


def test_paper_parallel_search_shape(interp):
    """The paper's parallel-search defines `search` inside a lambda body
    and calls it after — exactly this shape must work."""
    assert (
        interp.eval(
            """
            ((lambda (n)
               (define count
                 (lambda (k) (if (= k 0) 0 (+ 1 (count (- k 1))))))
               (count n))
             7)
            """
        )
        == 7
    )


def test_defines_must_precede_expressions(interp):
    # A define after an expression is not part of the body prefix.
    with pytest.raises(ExpandError):
        interp.eval("((lambda () 1 (define x 2) x))")


def test_body_of_only_defines_rejected(interp):
    with pytest.raises(ExpandError):
        interp.eval("((lambda () (define x 1)))")


def test_begin_splices_defines_in_body(interp):
    assert (
        interp.eval(
            """
            ((lambda ()
               (begin (define a 1) (define b 2))
               (+ a b)))
            """
        )
        == 3
    )


def test_macro_expanding_to_internal_define(interp):
    interp.run("(extend-syntax (defzero) [(defzero n) (define n 0)])")
    assert interp.eval("((lambda () (defzero z) z))") == 0


def test_internal_define_shadows_global(interp):
    interp.run("(define x 100)")
    assert interp.eval("((lambda () (define x 1) x))") == 1
    assert interp.eval("x") == 100


def test_define_without_value_is_unspecified(interp):
    from repro.datum import UNSPECIFIED

    assert interp.eval("((lambda () (define x) x))") is UNSPECIFIED
