"""Derived forms, tested by evaluating them end to end."""

import pytest

from repro.datum import UNSPECIFIED
from repro.errors import ExpandError
from repro.expander import ExpandEnv, expand_program
from repro.reader import read_all


def test_let(interp):
    assert interp.eval("(let ([x 1] [y 2]) (+ x y))") == 3


def test_let_empty_bindings(interp):
    assert interp.eval("(let () 5)") == 5


def test_let_body_sequence(interp):
    assert interp.eval("(let ([x 1]) (set! x 2) x)") == 2


def test_let_is_parallel_binding(interp):
    assert interp.eval("(let ([x 1]) (let ([x 2] [y x]) y))") == 1


def test_named_let_loop(interp):
    assert interp.eval("(let loop ([i 0] [acc 0]) (if (= i 5) acc (loop (+ i 1) (+ acc i))))") == 10


def test_let_star(interp):
    assert interp.eval("(let* ([x 1] [y (+ x 1)]) y)") == 2


def test_let_star_empty(interp):
    assert interp.eval("(let* () 7)") == 7


def test_letrec_mutual_recursion(interp):
    assert (
        interp.eval(
            """
            (letrec ([even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))]
                     [odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))])
              (even? 10))
            """
        )
        is True
    )


def test_cond_basic(interp):
    assert interp.eval("(cond [#f 1] [#t 2] [else 3])") == 2


def test_cond_else(interp):
    assert interp.eval("(cond [#f 1] [else 3])") == 3


def test_cond_no_match_unspecified(interp):
    assert interp.eval("(cond [#f 1])") is UNSPECIFIED


def test_cond_test_only_clause_returns_test(interp):
    assert interp.eval("(cond [#f] [42])") == 42


def test_cond_arrow(interp):
    assert interp.eval("(cond [(memv 2 '(1 2 3)) => car] [else 'no])") == 2


def test_cond_multi_expression_body(interp):
    assert interp.eval("(cond [#t 1 2 3])") == 3


def test_cond_else_not_last_rejected():
    with pytest.raises(ExpandError):
        expand_program(read_all("(cond [else 1] [#t 2])"), ExpandEnv())


def test_case(interp):
    assert interp.eval("(case 2 [(1) 'one] [(2 3) 'two-or-three] [else 'other])").name == "two-or-three"


def test_case_else(interp):
    assert interp.eval("(case 9 [(1) 'one] [else 'other])").name == "other"


def test_case_no_match_unspecified(interp):
    assert interp.eval("(case 9 [(1) 'one])") is UNSPECIFIED


def test_case_key_evaluated_once(interp):
    interp.run("(define hits 0)")
    interp.eval("(case (begin (set! hits (+ hits 1)) 2) [(1) 'a] [(2) 'b] [else 'c])")
    assert interp.eval("hits") == 1


def test_when_true(interp):
    assert interp.eval("(when #t 1 2)") == 2


def test_when_false(interp):
    assert interp.eval("(when #f 1 2)") is UNSPECIFIED


def test_unless(interp):
    assert interp.eval("(unless #f 'ran)").name == "ran"
    assert interp.eval("(unless #t 'ran)") is UNSPECIFIED


def test_and(interp):
    assert interp.eval("(and)") is True
    assert interp.eval("(and 1 2 3)") == 3
    assert interp.eval("(and 1 #f 3)") is False


def test_and_short_circuits(interp):
    interp.run("(define hits 0)")
    interp.eval("(and #f (begin (set! hits 1) #t))")
    assert interp.eval("hits") == 0


def test_or(interp):
    assert interp.eval("(or)") is False
    assert interp.eval("(or #f 2 3)") == 2
    assert interp.eval("(or #f #f)") is False


def test_or_short_circuits(interp):
    interp.run("(define hits 0)")
    assert interp.eval("(or 1 (begin (set! hits 1) 2))") == 1
    assert interp.eval("hits") == 0


def test_or_evaluates_test_once(interp):
    interp.run("(define hits 0)")
    interp.eval("(or (begin (set! hits (+ hits 1)) #f) 2)")
    assert interp.eval("hits") == 1


def test_do_loop(interp):
    assert (
        interp.eval("(do ([i 0 (+ i 1)] [acc 1 (* acc 2)]) ((= i 4) acc))") == 16
    )


def test_do_with_body_commands(interp):
    interp.run("(define total 0)")
    interp.eval("(do ([i 0 (+ i 1)]) ((= i 3)) (set! total (+ total i)))")
    assert interp.eval("total") == 3


def test_do_variable_without_step(interp):
    assert interp.eval("(do ([i 0 (+ i 1)] [x 9]) ((= i 2) x))") == 9


def test_do_empty_result_is_unspecified(interp):
    assert interp.eval("(do ([i 0 (+ i 1)]) ((= i 1)))") is UNSPECIFIED


def test_nested_derived_forms(interp):
    assert (
        interp.eval(
            """
            (let loop ([n 10] [acc '()])
              (cond
                [(zero? n) acc]
                [(even? n) (loop (- n 1) (cons n acc))]
                [else (loop (- n 1) acc)]))
            """
        ).car
        == 2
    )
