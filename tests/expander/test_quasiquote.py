"""Quasiquote expansion semantics."""


def test_plain_template(interp):
    assert interp.eval_to_string("`(1 2 3)") == "(1 2 3)"


def test_unquote(interp):
    assert interp.eval_to_string("(let ([x 5]) `(1 ,x 3))") == "(1 5 3)"


def test_unquote_splicing(interp):
    assert interp.eval_to_string("(let ([xs '(2 3)]) `(1 ,@xs 4))") == "(1 2 3 4)"


def test_unquote_splicing_at_end(interp):
    assert interp.eval_to_string("(let ([xs '(2 3)]) `(1 ,@xs))") == "(1 2 3)"


def test_unquote_in_car_position(interp):
    assert interp.eval_to_string("(let ([x 1]) `(,x . 2))") == "(1 . 2)"


def test_nested_structure(interp):
    assert interp.eval_to_string("(let ([x 9]) `(a (b ,x) c))") == "(a (b 9) c)"


def test_symbols_stay_quoted(interp):
    assert interp.eval_to_string("`(a b)") == "(a b)"


def test_nested_quasiquote_shields_unquote(interp):
    assert interp.eval_to_string("(let ([x 5]) ``(a ,x))") == "`(a ,x)"


def test_nested_quasiquote_double_unquote(interp):
    assert interp.eval_to_string("(let ([x 5]) ``(a ,,x))") == "`(a ,5)"


def test_vector_template(interp):
    assert interp.eval_to_string("(let ([x 7]) `#(1 ,x))") == "#(1 7)"


def test_quasiquote_atom(interp):
    assert interp.eval("`5") == 5


def test_splicing_empty_list(interp):
    assert interp.eval_to_string("`(1 ,@'() 2)") == "(1 2)"


def test_quasiquote_builds_fresh_structure(interp):
    interp.run("(define (build x) `(1 ,x))")
    assert interp.eval("(eq? (build 2) (build 2))") is False
