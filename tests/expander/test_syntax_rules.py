"""extend-syntax / define-syntax pattern macros."""

import pytest

from repro.errors import ExpandError


def test_simple_macro(interp):
    interp.run(
        """
        (extend-syntax (my-if)
          [(my-if c t e) (cond [c t] [else e])])
        """
    )
    assert interp.eval("(my-if #t 1 2)") == 1
    assert interp.eval("(my-if #f 1 2)") == 2


def test_macro_with_keyword(interp):
    interp.run(
        """
        (extend-syntax (for in)
          [(for x in ls body) (map (lambda (x) body) ls)])
        """
    )
    assert interp.eval_to_string("(for x in '(1 2 3) (* x 10))") == "(10 20 30)"


def test_ellipsis_splicing(interp):
    interp.run(
        """
        (extend-syntax (my-list)
          [(my-list e ...) (list e ...)])
        """
    )
    assert interp.eval_to_string("(my-list 1 2 3)") == "(1 2 3)"
    assert interp.eval_to_string("(my-list)") == "()"


def test_ellipsis_with_structure(interp):
    interp.run(
        """
        (extend-syntax (my-let)
          [(my-let ([name value] ...) body ...)
           ((lambda (name ...) body ...) value ...)])
        """
    )
    assert interp.eval("(my-let ([a 1] [b 2]) (+ a b))") == 3


def test_ellipsis_tail_pattern(interp):
    interp.run(
        """
        (extend-syntax (all-but-last)
          [(all-but-last x ... y) (list x ...)])
        """
    )
    assert interp.eval_to_string("(all-but-last 1 2 3)") == "(1 2)"


def test_multiple_rules_first_match_wins(interp):
    interp.run(
        """
        (extend-syntax (my-or)
          [(my-or) #f]
          [(my-or e) e]
          [(my-or e1 e2 ...) (let ([t e1]) (if t t (my-or e2 ...)))])
        """
    )
    assert interp.eval("(my-or)") is False
    assert interp.eval("(my-or 7)") == 7
    assert interp.eval("(my-or #f #f 9)") == 9


def test_recursive_macro(interp):
    interp.run(
        """
        (extend-syntax (my-and)
          [(my-and) #t]
          [(my-and e) e]
          [(my-and e1 e2 ...) (if e1 (my-and e2 ...) #f)])
        """
    )
    assert interp.eval("(my-and 1 2 3)") == 3


def test_no_matching_rule_raises(interp):
    interp.run("(extend-syntax (pairwise) [(pairwise a b) (list a b)])")
    with pytest.raises(ExpandError):
        interp.eval("(pairwise 1)")


def test_constant_pattern(interp):
    interp.run(
        """
        (extend-syntax (classify)
          [(classify 0) 'zero]
          [(classify n) 'nonzero])
        """
    )
    assert interp.eval("(classify 0)").name == "zero"
    assert interp.eval("(classify 5)").name == "nonzero"


def test_define_syntax_syntax_rules(interp):
    interp.run(
        """
        (define-syntax swap!
          (syntax-rules ()
            [(swap! a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
        """
    )
    interp.run("(define p 1) (define q 2) (swap! p q)")
    assert interp.eval("p") == 2
    assert interp.eval("q") == 1


def test_define_syntax_literals(interp):
    interp.run(
        """
        (define-syntax arrow-test
          (syntax-rules (=>)
            [(arrow-test a => b) (list a b)]))
        """
    )
    assert interp.eval_to_string("(arrow-test 1 => 2)") == "(1 2)"


def test_macro_producing_define(interp):
    interp.run(
        """
        (extend-syntax (define-constant)
          [(define-constant name value) (define name value)])
        (define-constant answer 42)
        """
    )
    assert interp.eval("answer") == 42


def test_lexical_binding_shadows_macro(interp):
    interp.run("(extend-syntax (m) [(m x) (list x x)])")
    assert interp.eval("(let ([m (lambda (x) x)]) (m 5))") == 5


def test_nested_ellipsis(interp):
    interp.run(
        """
        (extend-syntax (flatten2)
          [(flatten2 (a ...) ...) (list a ... ...)])
        """
    )
    assert interp.eval_to_string("(flatten2 (1 2) (3) ())") == "(1 2 3)"


def test_underscore_wildcard(interp):
    interp.run("(extend-syntax (second-of) [(second-of _ b) b])")
    assert interp.eval("(second-of 1 2)") == 2


def test_extend_syntax_fenders_rejected(interp):
    with pytest.raises(ExpandError):
        interp.run("(extend-syntax (m) [(m a) (number? a) a])")


def test_extend_syntax_only_top_level(interp):
    with pytest.raises(ExpandError):
        interp.eval("(let ([x 1]) (extend-syntax (m) [(m) 1]) x)")


def test_mismatched_ellipsis_lengths_rejected(interp):
    interp.run(
        """
        (extend-syntax (zip2)
          [(zip2 (a ...) (b ...)) (list (list a b) ...)])
        """
    )
    with pytest.raises(ExpandError):
        interp.eval("(zip2 (1 2) (3))")


def test_paper_parallel_or_definition(interp):
    """The exact extend-syntax from the paper's Section 5."""
    interp.run("(define (first-true p1 p2) (or (p1) (p2)))")  # stand-in
    interp.run(
        """
        (extend-syntax (parallel-or)
          [(parallel-or e1 e2)
           (first-true (lambda () e1) (lambda () e2))])
        """
    )
    assert interp.eval("(parallel-or #f 5)") == 5
