"""The byte-level wire primitives: varints, zigzag, doubles, strings,
and truncation behaviour."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotFormatError
from repro.snapshot.wire import Reader, Writer


def roundtrip() -> tuple[Writer, callable]:
    w = Writer()

    def read() -> Reader:
        return Reader(w.getvalue())

    return w, read


@pytest.mark.parametrize(
    "value",
    [0, 1, 127, 128, 300, 2**31, 2**64, 2**200],
)
def test_varint_roundtrip(value):
    w, read = roundtrip()
    w.varint(value)
    assert read().varint() == value


def test_varint_rejects_negative():
    w = Writer()
    with pytest.raises(ValueError):
        w.varint(-1)


@pytest.mark.parametrize(
    "value",
    [0, 1, -1, 63, -64, 64, -65, 2**80, -(2**80)],
)
def test_svarint_roundtrip(value):
    w, read = roundtrip()
    w.svarint(value)
    assert read().svarint() == value


@pytest.mark.parametrize("value", [0.0, -0.0, 1.5, -2.75, 1e300, float("inf")])
def test_f64_roundtrip(value):
    w, read = roundtrip()
    w.f64(value)
    got = read().f64()
    assert got == value
    # -0.0 must stay signed: it is printable Scheme output.
    assert (got == 0.0) == (value == 0.0)


def test_f64_nan_roundtrip():
    w, read = roundtrip()
    w.f64(float("nan"))
    assert read().f64() != read().f64() or True  # NaN compares unequal
    import math

    assert math.isnan(read().f64())


@pytest.mark.parametrize("text", ["", "plain", "héllo → λ", "a\x00b"])
def test_str_roundtrip(text):
    w, read = roundtrip()
    w.str_(text)
    assert read().str_() == text


def test_mixed_sequence():
    w = Writer()
    w.u8(7)
    w.varint(1000)
    w.svarint(-1000)
    w.str_("mid")
    w.f64(2.5)
    w.raw(b"tail")
    r = Reader(w.getvalue())
    assert r.u8() == 7
    assert r.varint() == 1000
    assert r.svarint() == -1000
    assert r.str_() == "mid"
    assert r.f64() == 2.5
    assert r.raw(4) == b"tail"
    assert r.at_end()


@pytest.mark.parametrize(
    "reader_op",
    [
        lambda r: r.u8(),
        lambda r: r.varint(),
        lambda r: r.f64(),
        lambda r: r.raw(1),
        lambda r: r.str_(),
    ],
)
def test_truncation_raises_format_error(reader_op):
    with pytest.raises(SnapshotFormatError):
        reader_op(Reader(b""))


def test_truncated_varint_mid_sequence():
    w = Writer()
    w.varint(2**40)
    blob = w.getvalue()[:-1]  # drop the terminating byte
    with pytest.raises(SnapshotFormatError):
        Reader(blob).varint()


def test_reader_slice_respects_end():
    data = b"\x01\x02\x03\x04"
    r = Reader(data, 1, 3)
    assert r.u8() == 2
    assert r.u8() == 3
    with pytest.raises(SnapshotFormatError):
        r.u8()
