"""The session snapshot codec: round-trip fidelity, identity and
sharing preservation, determinism, format errors, and the in-pump
guard."""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import SnapshotError, SnapshotFormatError
from repro.snapshot import FORMAT_VERSION, MAGIC, restore_session, snapshot_session

ENGINES = ["dict", "resolved", "compiled", "codegen"]


def drained(session: Session) -> Session:
    """Drive everything queued; the session ends idle."""
    while not session.idle:
        handle = session._active or session._pending[0]
        session.drive(handle)
    return session


# -- basic round trips ----------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_idle_roundtrip_preserves_output_and_stats(engine):
    s = Session(engine=engine)
    s.drive(s.submit("(define (sq n) (* n n)) (display (sq 12))"))
    blob = s.snapshot()
    r = Session.restore(blob)
    assert r.output_text() == s.output_text()
    assert r.machine.stats == s.machine.stats
    assert r.stats == s.stats
    assert r.name == s.name
    assert r.engine == s.engine


@pytest.mark.parametrize("engine", ENGINES)
def test_restored_session_continues_computing(engine):
    s = Session(engine=engine)
    s.drive(s.submit("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"))
    r = Session.restore(s.snapshot())
    h = r.submit("(fact 10)")
    assert r.drive(h) == [3628800]


def test_mutable_state_survives():
    s = Session()
    s.drive(s.submit("(define counter 0) (define (bump!) (set! counter (+ counter 1)))"))
    s.drive(s.submit("(bump!) (bump!)"))
    r = Session.restore(s.snapshot())
    h = r.submit("(bump!) counter")
    assert r.drive(h)[-1] == 3


def test_macros_survive():
    s = Session()
    s.drive(
        s.submit(
            "(define-syntax unless2"
            " (syntax-rules () ((_ c e) (if c #f e))))"
        )
    )
    r = Session.restore(s.snapshot())
    assert r.drive(r.submit("(unless2 #f 42)"))[-1] == 42


def test_shared_structure_stays_shared():
    s = Session()
    s.drive(s.submit("(define a (list 1 2 3)) (define b a)"))
    r = Session.restore(s.snapshot())
    r.drive(r.submit("(set-car! a 99)"))
    assert r.drive(r.submit("(car b)"))[-1] == 99


def test_cyclic_structure_roundtrips():
    s = Session()
    s.drive(s.submit("(define knot (list 1 2)) (set-cdr! (cdr knot) knot)"))
    r = Session.restore(s.snapshot())
    assert r.drive(r.submit("(car (cdr (cdr (cdr knot))))"))[-1] == 2


def test_vectors_and_exotic_scalars():
    s = Session()
    s.drive(
        s.submit(
            '(define v (vector 1 2.5 "s" #\\x (/ 1 3) (expt 10 30)))'
        )
    )
    r = Session.restore(s.snapshot())
    assert r.drive(r.submit("(vector-ref v 4)"))[-1].numerator == 1
    assert r.drive(r.submit("(vector-ref v 5)"))[-1] == 10**30


# -- suspended computations ----------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_suspended_mid_pcall_resumes_identically(engine):
    prog = (
        "(define (loop n) (if (= n 0) 0 (loop (- n 1))))"
        "(display (pcall + (loop 40) (loop 60) (loop 25)))"
    )
    ref = Session(engine=engine, quantum=8)
    ref.drive(ref.submit(prog))

    s = Session(engine=engine, quantum=8)
    s.submit(prog)
    s.pump(5)  # suspend with the pcall branches mid-flight
    r = Session.restore(s.snapshot())
    assert not r.idle
    drained(r)
    assert r.output_text() == ref.output_text()
    assert r.machine.stats == ref.machine.stats


@pytest.mark.parametrize("engine", ENGINES)
def test_parked_future_survives_snapshot(engine):
    s = Session(engine=engine, quantum=16)
    s.drive(
        s.submit(
            "(define (loop n) (if (= n 0) 7 (loop (- n 1))))"
            "(define f (future (lambda () (loop 500))))"
        )
    )
    # The future's tree is parked (or its value delivered) between forms.
    r = Session.restore(s.snapshot())
    assert r.drive(r.submit("(+ (touch f) 1)"))[-1] == 8


def test_captured_continuation_survives():
    s = Session(quantum=16)
    s.drive(
        s.submit(
            "(define saved #f)"
            "(define out (spawn (lambda (c) (+ 100 (c (lambda (k) (set! saved k) 5))))))"
        )
    )
    r = Session.restore(s.snapshot())
    # The controller's continuation was stashed; reinstating it still works.
    assert r.drive(r.submit("(spawn (lambda (c2) (saved 1)))"))[-1] == 101


def test_pending_queue_survives():
    s = Session()
    s.submit("(define a 1)")
    s.submit("(define b 2)")
    s.submit("(+ a b)")
    assert s.queue_depth == 3
    r = Session.restore(s.snapshot())
    assert r.queue_depth == 3
    results = [drained(r)][0]
    last = r._pending[-1] if r._pending else None
    assert r.idle
    assert r.drive(r.submit("(+ a b)"))[-1] == 3


def test_counter_watermarks_advance_on_restore():
    """Restoring a snapshot brings every uid stream at least up to the
    snapshot's watermark, so ids minted after restore can never collide
    with ids living inside the restored graph (gensym printed names,
    task/label/future uids in traces)."""
    from repro.datum.symbols import _gensym_counter, gensym

    s = Session()
    s.drive(s.submit("(define ok 1)"))
    for _ in range(3):
        gensym()  # advance the stream past wherever it was
    watermark = _gensym_counter.peek()
    blob = s.snapshot()
    saved = _gensym_counter.peek()
    try:
        _gensym_counter.reset(0)  # simulate a fresh process
        Session.restore(blob)
        assert _gensym_counter.peek() >= watermark
        # And never backwards: restoring an *old* snapshot must not
        # rewind a further-along stream.
        _gensym_counter.reset(watermark + 100)
        Session.restore(blob)
        assert _gensym_counter.peek() >= watermark + 100
    finally:
        _gensym_counter.advance(max(saved, _gensym_counter.peek()))


# -- determinism ----------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_idle_snapshot_is_deterministic(engine):
    s = Session(engine=engine)
    s.drive(s.submit("(define z (list 1 2 3)) (display z)"))
    blob = s.snapshot()
    assert s.snapshot() == blob  # stable under repetition
    r = Session.restore(blob)
    assert r.snapshot() == blob  # and under a restore cycle


def test_random_policy_rng_state_carried():
    prog = (
        "(define (loop n) (if (= n 0) 0 (loop (- n 1))))"
        "(display (pcall + (loop 30) (loop 50) (loop 20) (loop 40)))"
    )
    ref = Session(policy="random", seed=3, quantum=2)
    ref.drive(ref.submit(prog))
    s = Session(policy="random", seed=3, quantum=2)
    s.submit(prog)
    s.pump(4)
    r = Session.restore(s.snapshot())
    drained(r)
    assert r.machine.stats == ref.machine.stats
    assert r.output_text() == ref.output_text()


# -- guards and format errors ---------------------------------------------


def test_snapshot_inside_pump_refused():
    s = Session()
    s.submit("(define x 1)")
    s._in_pump = True
    try:
        with pytest.raises(SnapshotError):
            s.snapshot()
    finally:
        s._in_pump = False


def test_bad_magic_rejected():
    with pytest.raises(SnapshotFormatError):
        restore_session(b"NOPE" + b"\x00" * 64)


def test_bad_version_rejected():
    s = Session()
    blob = bytearray(s.snapshot())
    assert blob[:4] == MAGIC
    blob[4] = FORMAT_VERSION + 1
    with pytest.raises(SnapshotFormatError):
        restore_session(bytes(blob))


def test_truncated_blob_rejected():
    s = Session()
    blob = s.snapshot()
    # A truncation is always reported as a snapshot problem, never an
    # IndexError/KeyError: usually SnapshotFormatError, but a cut that
    # lands inside a name string can surface as the (parent)
    # SnapshotError for a primitive that "does not exist".
    for cut in (5, len(blob) // 2, len(blob) - 1):
        with pytest.raises(SnapshotError):
            restore_session(blob[:cut])


def test_empty_blob_rejected():
    with pytest.raises(SnapshotFormatError):
        restore_session(b"")


def test_name_override():
    s = Session(name="origin")
    blob = s.snapshot()
    r = Session.restore(blob, name="replica")
    assert r.name == "replica"
    assert Session.restore(blob).name == "origin"


def test_module_level_api_matches_methods():
    s = Session()
    s.drive(s.submit("(display 1)"))
    assert restore_session(snapshot_session(s)).output_text() == "1"
