"""Cross-engine snapshot restore: a blob taken under one engine
restores and completes under another.

``Session.restore(blob, engine=...)`` overrides the header engine; the
``_N_CODE`` records are re-instantiated by the *restoring* engine
(codegen re-emits through its ir-hash cache, compiled re-runs the
closure compiler, the tree-walkers evaluate the resolved node
directly).  Values must be byte-identical across the restoring
engines.  Step totals are only gated within one engine — engines
legitimately differ in how many machine steps a program costs (codegen
fuses more per step), so cross-engine totals are *expected* to differ.
"""

from __future__ import annotations

import pytest

from repro import Session

PROG = (
    "(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc n))))"
    "(display (pcall + (loop 40 0) (loop 60 0) (loop 25 0)))"
)

RESTORE_ENGINES = ["codegen", "compiled", "resolved", "dict"]


def drained(session: Session) -> Session:
    while not session.idle:
        handle = session._active or session._pending[0]
        session.drive(handle)
    return session


def _mid_pcall_codegen_blob():
    s = Session(engine="codegen", quantum=8)
    s.submit(PROG)
    s.pump(5)  # suspend with the pcall branches mid-flight
    assert not s.idle
    return s.snapshot()


@pytest.mark.parametrize("engine", RESTORE_ENGINES)
def test_mid_pcall_codegen_restores_under_any_engine(engine):
    ref = Session(engine="codegen", quantum=8)
    ref.drive(ref.submit(PROG))

    r = Session.restore(_mid_pcall_codegen_blob(), engine=engine)
    assert r.engine == engine
    assert not r.idle
    drained(r)
    assert r.output_text() == ref.output_text()


def test_cross_engine_values_byte_identical():
    blob = _mid_pcall_codegen_blob()
    outputs = {
        engine: drained(Session.restore(blob, engine=engine)).output_text()
        for engine in RESTORE_ENGINES
    }
    assert len(set(outputs.values())) == 1, outputs


def test_same_engine_restore_is_deterministic():
    # Restoring the same blob twice under the same engine must replay
    # to identical values AND identical step totals.
    blob = _mid_pcall_codegen_blob()
    for engine in RESTORE_ENGINES:
        a = drained(Session.restore(blob, engine=engine))
        b = drained(Session.restore(blob, engine=engine))
        assert a.output_text() == b.output_text()
        assert a.machine.steps_total == b.machine.steps_total
        assert a.machine.stats == b.machine.stats


def test_restored_codegen_session_serves_new_code():
    # After a cross-engine round trip back to codegen, the session must
    # emit and run fresh forms (the code cache is module-level, so this
    # also exercises restore-time cache hits).
    blob = _mid_pcall_codegen_blob()
    r = Session.restore(blob, engine="codegen")
    drained(r)
    assert r.drive(r.submit("(loop 10 0)"))[-1] == 55


def test_codegen_blob_under_compiled_serves_new_code():
    r = Session.restore(_mid_pcall_codegen_blob(), engine="compiled")
    drained(r)
    assert r.drive(r.submit("(loop 10 0)"))[-1] == 55


def test_header_engine_used_when_no_override():
    s = Session(engine="codegen")
    s.drive(s.submit("(define x 1)"))
    r = Session.restore(s.snapshot())
    assert r.engine == "codegen"
    assert r.drive(r.submit("(+ x 41)"))[-1] == 42


def test_migrate_compiled_to_codegen():
    # The reverse direction: a compiled-engine snapshot restored under
    # codegen — closures whose bodies were compiled thunks are re-coded
    # by codegen at restore time.
    s = Session(engine="compiled", quantum=8)
    s.submit(PROG)
    s.pump(5)
    ref = Session(engine="compiled", quantum=8)
    ref.drive(ref.submit(PROG))
    r = Session.restore(s.snapshot(), engine="codegen")
    drained(r)
    assert r.output_text() == ref.output_text()
    assert r.drive(r.submit("(loop 10 0)"))[-1] == 55
