"""Randomized snapshot/restore equivalence.

A seeded generator produces concurrent programs mixing ``pcall`` trees,
futures, ``spawn`` captures and ``call/cc``; each is run two ways —
straight through, and interrupted mid-flight / snapshotted / restored /
drained — and the two runs must agree byte-for-byte on output and
step-for-step on machine stats, across the engine × quantum divergence
matrix.  A subprocess subset proves the blob carries everything across
a process boundary (fresh interned-symbol table, fresh uid counters,
recompiled code).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys

import pytest

from repro import Session

ENGINES = ["dict", "resolved", "compiled"]
QUANTA = [1, 16, 4096]

PRELUDE = (
    "(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc 1))))"
)


def gen_expr(rng: random.Random, depth: int = 0, in_future: bool = False) -> str:
    """One expression of the concurrency-heavy fragment.

    ``in_future`` suppresses the whole-tree ``call/cc`` arm: a future's
    tree is independent (Section 8), so a whole-tree capture from
    inside one is an error by design, not a program we want to
    generate.
    """
    roll = rng.random()
    if depth >= 2 or roll < 0.30:
        return f"(loop {rng.randint(4, 30)} {rng.randint(0, 4)})"
    if roll < 0.55:
        arms = " ".join(
            gen_expr(rng, depth + 1, in_future) for _ in range(rng.randint(2, 4))
        )
        return f"(pcall + {arms})"
    if roll < 0.72:
        return f"(touch (future (lambda () {gen_expr(rng, depth + 1, True)})))"
    if roll < 0.88 or in_future:
        # A spawn whose controller captures and immediately reinstates:
        # exercises Capture packaging mid-run.  Valid anywhere — the
        # controller's label lives in the expression's own tree.
        inner = gen_expr(rng, depth + 1, in_future)
        outer = gen_expr(rng, depth + 1, in_future)
        return f"(spawn (lambda (c) (+ {outer} (c (lambda (k) (k {inner}))))))"
    return f"(call/cc (lambda (k) (+ 1 (k {gen_expr(rng, depth + 1)}))))"


def gen_program(seed: int) -> str:
    rng = random.Random(seed)
    forms = [PRELUDE]
    for _ in range(rng.randint(2, 4)):
        forms.append(f'(display {gen_expr(rng)}) (display " ")')
    # End with a future parked across a form boundary, touched late.
    forms.append(
        f"(define parked (future (lambda () {gen_expr(rng, in_future=True)})))"
    )
    forms.append("(display (touch parked))")
    return " ".join(forms)


def drain(session: Session) -> None:
    while not session.idle:
        session.pump(10_000)


def run_reference(
    program: str, engine: str, quantum: int, seed: int, prefix: list[int] = ()
) -> Session:
    """A straight (never-snapshotted) run, pumped with exactly the
    budget schedule the interrupted run will use: ``prefix`` budgets
    first, then 10k-step drain chunks.  The schedules must match
    because pump granularity is itself (deliberately) observable in
    ``tasks_created`` on the compiled engine — a tiny budget can force
    a spill that materializes a task the batched driver would have
    avoided."""
    s = Session(engine=engine, quantum=quantum, seed=seed)
    s.submit(program)
    for budget in prefix:
        if s.idle:
            break
        s.pump(budget)
    drain(s)
    return s


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("quantum", QUANTA)
def test_interrupt_snapshot_resume_matches_straight_run(engine, quantum):
    for seed in (11, 23):
        program = gen_program(seed)
        ref = run_reference(program, engine, quantum, seed=5, prefix=[7])

        s = Session(engine=engine, quantum=quantum, seed=5)
        s.submit(program)
        s.pump(7)  # interrupt mid-capture / mid-pcall / futures in flight
        blob = s.snapshot()
        r = Session.restore(blob)
        drain(r)
        assert r.output_text() == ref.output_text(), (engine, quantum, seed)
        assert r.machine.stats == ref.machine.stats, (engine, quantum, seed)


@pytest.mark.parametrize("engine", ENGINES)
def test_repeated_interruption(engine):
    """Snapshot/restore at *every* few quanta of progress — the
    composition of many round trips still matches one straight run."""
    program = gen_program(31)
    s = Session(engine=engine, quantum=16, seed=2)
    s.submit(program)
    rounds = 0
    for _ in range(50):
        if s.idle:
            break
        s.pump(5)
        s = Session.restore(s.snapshot())
        rounds += 1
    drain(s)
    ref = run_reference(program, engine, 16, seed=2, prefix=[5] * rounds)
    assert s.output_text() == ref.output_text()
    assert s.machine.stats == ref.machine.stats


_CHILD = r"""
import json, sys
from repro import Session

with open(sys.argv[1], "rb") as fh:
    blob = fh.read()
session = Session.restore(blob)
while not session.idle:
    session.pump(10_000)
print(json.dumps({
    "output": session.output_text(),
    "stats": {k: v for k, v in session.machine.stats.items()},
}))
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_restore_in_fresh_process(tmp_path, engine):
    """The blob is self-contained: a brand-new interpreter process —
    fresh symbol table, fresh counters, nothing compiled — drains the
    suspended session to the same bytes."""
    program = gen_program(47)
    ref = run_reference(program, engine, 16, seed=9, prefix=[7])

    s = Session(engine=engine, quantum=16, seed=9)
    s.submit(program)
    s.pump(7)
    blob_path = tmp_path / "session.rsnp"
    blob_path.write_bytes(s.snapshot())

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(blob_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    got = json.loads(proc.stdout)
    assert got["output"] == ref.output_text()
    assert got["stats"] == ref.machine.stats
