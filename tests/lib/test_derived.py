"""The derived Scheme libraries (exceptions, generators, coroutines,
parallel combinators, amb)."""

import pytest

from repro import Interpreter


@pytest.fixture
def lib_interp():
    interp = Interpreter()
    for lib in ("exceptions", "generators", "coroutines", "parallel", "amb"):
        interp.load_library(lib)
    return interp


class TestExceptions:
    def test_normal_path(self, lib_interp):
        assert (
            lib_interp.eval("(with-handler (lambda (e) 'no) (lambda (raise) 42))")
            == 42
        )

    def test_raise(self, lib_interp):
        assert (
            lib_interp.eval_to_string(
                "(with-handler (lambda (e) (list 'got e)) "
                "(lambda (raise) (* 2 (raise 'bad))))"
            )
            == "(got bad)"
        )

    def test_guard_else(self, lib_interp):
        assert (
            lib_interp.eval(
                "(guard-else (lambda (raise) (raise 9)) (lambda (e) (+ e 1)))"
            )
            == 10
        )

    def test_raise_from_pcall_branch(self, lib_interp):
        assert (
            lib_interp.eval(
                "(with-handler (lambda (e) e) "
                "(lambda (raise) (pcall + 1 (raise 'boom))))"
            ).name
            == "boom"
        )


class TestGenerators:
    def test_sequence(self, lib_interp):
        lib_interp.run(
            "(define g (make-generator (lambda (emit) (emit 1) (emit 2))))"
        )
        assert lib_interp.eval("(g)") == 1
        assert lib_interp.eval("(g)") == 2
        assert lib_interp.eval("(g)").name == "generator-done"

    def test_done_is_sticky(self, lib_interp):
        lib_interp.run("(define g (make-generator (lambda (emit) (emit 1))))")
        lib_interp.eval("(g)")
        assert lib_interp.eval("(g)").name == "generator-done"
        assert lib_interp.eval("(g)").name == "generator-done"

    def test_generator_to_list(self, lib_interp):
        assert (
            lib_interp.eval_to_string(
                "(generator->list (make-generator "
                "(lambda (emit) (for-each emit '(a b c)))))"
            )
            == "(a b c)"
        )

    def test_tree_generator_inorder(self, lib_interp):
        assert (
            lib_interp.eval_to_string(
                "(generator->list (tree-generator (list->tree '(4 2 6 1 3 5))))"
            )
            == "(1 2 3 4 5 6)"
        )

    def test_two_generators_independent(self, lib_interp):
        lib_interp.run(
            """
            (define (mk) (make-generator (lambda (emit) (emit 'x) (emit 'y))))
            (define g1 (mk))
            (define g2 (mk))
            """
        )
        assert lib_interp.eval("(g1)").name == "x"
        assert lib_interp.eval("(g2)").name == "x"
        assert lib_interp.eval("(g1)").name == "y"


class TestCoroutines:
    def test_yield_values(self, lib_interp):
        lib_interp.run(
            """
            (define co (make-coroutine
                         (lambda (yield) (yield 1) (yield 2) 'end)))
            """
        )
        assert lib_interp.eval_to_string("(resume co)") == "(yield . 1)"
        assert lib_interp.eval_to_string("(resume co)") == "(yield . 2)"
        assert lib_interp.eval_to_string("(resume co)") == "(done . end)"

    def test_bidirectional(self, lib_interp):
        lib_interp.run(
            """
            (define co (make-coroutine
                         (lambda (yield)
                           (let ([a (yield 'ready)])
                             (yield (* a 2))))))
            """
        )
        assert lib_interp.eval("(cdr (resume co))").name == "ready"
        assert lib_interp.eval("(cdr (resume co 21))") == 42

    def test_resume_after_done_errors(self, lib_interp):
        from repro.errors import SchemeError

        lib_interp.run("(define co (make-coroutine (lambda (yield) 'done)))")
        lib_interp.eval("(resume co)")
        with pytest.raises(SchemeError, match="completed"):
            lib_interp.eval("(resume co)")

    def test_predicates(self, lib_interp):
        lib_interp.run("(define co (make-coroutine (lambda (yield) (yield 1) 2)))")
        assert lib_interp.eval("(coroutine-yielded? (resume co))") is True
        lib_interp.run("(define r (resume co))")
        assert lib_interp.eval("(coroutine-done? r)") is True
        assert lib_interp.eval("(coroutine-value r)") == 2


class TestParallel:
    def test_parallel_and_truths(self, lib_interp):
        assert lib_interp.eval("(parallel-and 1 2)") == 2
        assert lib_interp.eval("(parallel-and #f 2)") is False
        assert lib_interp.eval("(parallel-and 1 #f)") is False

    def test_parallel_and_false_abandons_sibling(self, lib_interp):
        interp = Interpreter(quantum=1, max_steps=300_000)
        interp.load_library("parallel")
        assert interp.eval("(parallel-and #f (let loop () (loop)))") is False

    def test_par_map(self, lib_interp):
        assert (
            lib_interp.eval_to_string("(par-map (lambda (x) (* x x)) '(1 2 3 4))")
            == "(1 4 9 16)"
        )
        assert lib_interp.eval_to_string("(par-map add1 '())") == "()"

    def test_par_map_equals_map(self, lib_interp):
        assert lib_interp.eval(
            "(equal? (par-map add1 (iota 20)) (map add1 (iota 20)))"
        ) is True

    def test_race_first_wins(self, lib_interp):
        interp = Interpreter(quantum=1, max_steps=300_000)
        interp.load_library("parallel")
        assert (
            interp.eval("(race (lambda () 'quick) (lambda () (let l () (l))))").name
            == "quick"
        )


class TestAmb:
    def test_solution_found(self, lib_interp):
        assert (
            lib_interp.eval_to_string(
                "(amb-solve (list '(1 2 3) '(10 20)) "
                "(lambda (xs) (= 23 (+ (car xs) (cadr xs)))))"
            )
            == "(3 20)"
        )

    def test_no_solution(self, lib_interp):
        assert (
            lib_interp.eval(
                "(amb-solve (list '(1) '(1)) (lambda (xs) #f))"
            )
            is False
        )

    def test_all_solutions(self, lib_interp):
        assert (
            lib_interp.eval_to_string(
                "(amb-solve-all (list '(1 2 3) '(1 2 3)) "
                "(lambda (xs) (= 4 (+ (car xs) (cadr xs)))))"
            )
            == "((1 3) (2 2) (3 1))"
        )

    def test_all_solutions_empty(self, lib_interp):
        assert (
            lib_interp.eval_to_string(
                "(amb-solve-all (list '(1 2)) (lambda (xs) #f))"
            )
            == "()"
        )


def test_unknown_library_raises():
    with pytest.raises(ValueError, match="unknown library"):
        Interpreter().load_library("nope")


def test_library_loading_idempotent():
    interp = Interpreter()
    interp.load_library("amb")
    interp.load_library("amb")  # no error, no re-definition issues
    assert interp.eval("(procedure? amb-solve)") is True


class TestEnginesUtil:
    @pytest.fixture
    def eng_interp(self):
        interp = Interpreter()
        interp.load_library("engines-util")
        return interp

    def test_with_timeout_completes(self, eng_interp):
        assert (
            eng_interp.eval("(with-timeout 100000 (lambda () (* 6 7)) 'late)")
            == 42
        )

    def test_with_timeout_expires(self, eng_interp):
        assert (
            eng_interp.eval(
                "(with-timeout 50 (lambda () (let l () (l))) 'timed-out)"
            ).name
            == "timed-out"
        )

    def test_with_timeout_boundary_behaviour(self, eng_interp):
        # A cheap thunk fits in a small budget.
        assert eng_interp.eval("(with-timeout 1000 (lambda () 1) 'late)") == 1

    def test_run_engines_fairly(self, eng_interp):
        result = eng_interp.eval_to_string(
            """
            (run-engines-fairly
              (list (lambda () (let l ([i 90]) (if (zero? i) 'long (l (- i 1)))))
                    (lambda () 'short)
                    (lambda () (let l ([i 30]) (if (zero? i) 'mid (l (- i 1))))))
              40)
            """
        )
        # Completion order: cheapest first under fair slicing.
        assert result == "(short mid long)"

    def test_first_to_finish(self, eng_interp):
        assert (
            eng_interp.eval(
                """
                (first-to-finish
                  (lambda () (let l () (l)))  ; never finishes
                  (lambda () 'quick)
                  25)
                """
            ).name
            == "quick"
        )

    def test_timeout_inside_pcall(self, eng_interp):
        assert (
            eng_interp.eval(
                """
                (pcall list
                       (with-timeout 30 (lambda () (let l () (l))) 'to)
                       (with-timeout 100000 (lambda () 'ok) 'to))
                """
            )
            is not None
        )
