"""The Scheme prelude."""


def test_map_single_list(interp):
    assert interp.eval_to_string("(map add1 '(1 2 3))") == "(2 3 4)"


def test_map_multi_list(interp):
    assert interp.eval_to_string("(map + '(1 2) '(10 20))") == "(11 22)"


def test_map_stops_at_shortest(interp):
    assert interp.eval_to_string("(map + '(1 2 3) '(10 20))") == "(11 22)"


def test_for_each_order(interp):
    interp.run("(define acc '())")
    interp.eval("(for-each (lambda (x) (set! acc (cons x acc))) '(1 2 3))")
    assert interp.eval_to_string("acc") == "(3 2 1)"


def test_for_each_multi(interp):
    interp.run("(define acc '())")
    interp.eval("(for-each (lambda (a b) (set! acc (cons (+ a b) acc))) '(1 2) '(10 20))")
    assert interp.eval_to_string("acc") == "(22 11)"


def test_filter(interp):
    assert interp.eval_to_string("(filter even? '(1 2 3 4 5 6))") == "(2 4 6)"
    assert interp.eval_to_string("(filter even? '())") == "()"


def test_folds(interp):
    assert interp.eval("(fold-left + 0 '(1 2 3))") == 6
    assert interp.eval("(fold-left - 10 '(1 2))") == 7  # (10-1)-2
    assert interp.eval("(fold-right - 0 '(1 2 3))") == 2  # 1-(2-(3-0))
    assert interp.eval("(reduce + 0 '(1 2 3))") == 6
    assert interp.eval("(reduce + 99 '())") == 99


def test_remove(interp):
    assert interp.eval_to_string("(remove 2 '(1 2 3 2))") == "(1 3)"


def test_list_copy_is_fresh(interp):
    interp.run("(define a '(1 2)) (define b (list-copy a))")
    assert interp.eval("(equal? a b)") is True
    assert interp.eval("(eq? a b)") is False


def test_list_index(interp):
    assert interp.eval("(list-index even? '(1 3 4 5))") == 2
    assert interp.eval("(list-index even? '(1 3 5))") is False


def test_count(interp):
    assert interp.eval("(count odd? '(1 2 3 4 5))") == 3


def test_andmap_ormap(interp):
    assert interp.eval("(andmap even? '(2 4))") is True
    assert interp.eval("(andmap even? '(2 3))") is False
    assert interp.eval("(andmap even? '())") is True
    assert interp.eval("(ormap even? '(1 2))") is True
    assert interp.eval("(ormap even? '(1 3))") is False


def test_tree_helpers(interp):
    interp.run("(define t (list->tree '(5 3 8)))")
    assert interp.eval("(node t)") == 5
    assert interp.eval("(node (left t))") == 3
    assert interp.eval("(node (right t))") == 8
    assert interp.eval("(empty? (left (left t)))") is True
    assert interp.eval("(tree-size t)") == 3


def test_tree_inorder_is_sorted(interp):
    assert (
        interp.eval_to_string("(tree->list (list->tree '(5 2 8 1 9 3)))")
        == "(1 2 3 5 8 9)"
    )


def test_leaf_and_make_tree(interp):
    assert interp.eval("(node (leaf 7))") == 7
    assert interp.eval("(tree-size (make-tree 1 (leaf 2) (leaf 3)))") == 3


def test_compose_identity_constantly(interp):
    assert interp.eval("((compose add1 add1) 1)") == 3
    assert interp.eval("(identity 'x)").name == "x"
    assert interp.eval("((constantly 5) 1 2 3)") == 5


def test_delay_is_lazy(interp):
    interp.run("(define hits 0)")
    interp.run("(define p (delay (begin (set! hits (+ hits 1)) 42)))")
    assert interp.eval("hits") == 0
    assert interp.eval("(force p)") == 42
    assert interp.eval("hits") == 1


def test_force_memoizes(interp):
    interp.run("(define hits 0)")
    interp.run("(define p (delay (begin (set! hits (+ hits 1)) 'v)))")
    interp.eval("(force p)")
    interp.eval("(force p)")
    assert interp.eval("hits") == 1


def test_lazy_stream_via_delay(interp):
    interp.run(
        """
        (define (ints-from n) (cons n (delay (ints-from (+ n 1)))))
        (define (stream-take s n)
          (if (= n 0) '() (cons (car s) (stream-take (force (cdr s)) (- n 1)))))
        """
    )
    assert interp.eval_to_string("(stream-take (ints-from 5) 4)") == "(5 6 7 8)"
