"""Every Section 2–5 program from the paper, run end to end."""

import pytest


class TestSection2:
    def test_make_cell(self, paper_interp):
        paper_interp.run("(define cell (make-cell 0))")
        assert paper_interp.eval("((car cell))") == 0
        paper_interp.eval("((cdr cell) 1)")
        assert paper_interp.eval("((car cell))") == 1

    def test_paper_let_example(self, paper_interp):
        assert (
            paper_interp.eval("(let ([x (make-cell 0)]) ((cdr x) 1) ((car x)))") == 1
        )


class TestSection3:
    def test_product0_with_exit_procedure(self, paper_interp):
        # product0 works with any exit, even a plain procedure.
        assert paper_interp.eval("(product0 '(2 3 4) (lambda (v) v))") == 24

    def test_product(self, paper_interp):
        assert paper_interp.eval("(product '(1 2 3 4 5))") == 120
        assert paper_interp.eval("(product '())") == 1
        assert paper_interp.eval("(product '(1 2 0 4 5))") == 0

    def test_sum_of_sequential_products(self, paper_interp):
        assert paper_interp.eval("(+ (product '(1 2)) (product '(3 4)))") == 14

    def test_product_of_products_shared_exit(self, paper_interp):
        assert paper_interp.eval("(product-of-products '(2 3) '(4 5))") == 120
        # Zero in the SECOND list aborts before multiplying garbage:
        assert paper_interp.eval("(product-of-products '(2 3) '(0 oops))") == 0


class TestSection5:
    def test_spawn_exit_levels(self, paper_interp):
        # "a computation may exit from any level"
        assert (
            paper_interp.eval(
                """
                (spawn/exit (lambda (outer)
                  (+ 1 (spawn/exit (lambda (inner)
                          (+ 10 (outer 'both-levels)))))))
                """
            ).name
            == "both-levels"
        )

    def test_spawn_exit_invalid_after_return(self, paper_interp):
        from repro.errors import DeadControllerError

        paper_interp.run("(define leaked #f)")
        paper_interp.eval(
            "(spawn/exit (lambda (exit) (set! leaked exit) 'done))"
        )
        with pytest.raises(DeadControllerError):
            paper_interp.eval("(leaked 1)")

    def test_sum_of_products_concurrent(self, paper_interp):
        assert paper_interp.eval("(sum-of-products '(1 2 3) '(4 5))") == 26
        assert paper_interp.eval("(sum-of-products '(0 x) '(4 5))") == 20
        assert paper_interp.eval("(sum-of-products '(2 3) '(0 x))") == 6
        assert paper_interp.eval("(sum-of-products '(0 x) '(0 y))") == 0

    def test_product_of_products_spawn(self, paper_interp):
        assert paper_interp.eval("(product-of-products/spawn '(2 3) '(4 5))") == 120
        assert paper_interp.eval("(product-of-products/spawn '(0 x) '(4 5))") == 0
        assert paper_interp.eval("(product-of-products/spawn '(2 3) '(0 y))") == 0

    def test_first_true(self, paper_interp):
        assert (
            paper_interp.eval(
                "(first-true (lambda () #f) (lambda () 'second))"
            ).name
            == "second"
        )
        assert (
            paper_interp.eval(
                "(first-true (lambda () 'first) (lambda () #f))"
            ).name
            == "first"
        )
        assert (
            paper_interp.eval("(first-true (lambda () #f) (lambda () #f))") is False
        )

    def test_parallel_or_macro(self, paper_interp):
        assert paper_interp.eval("(parallel-or #f 17)") == 17
        assert paper_interp.eval("(parallel-or 23 #f)") == 23
        assert paper_interp.eval("(parallel-or #f #f)") is False

    def test_parallel_or_winner_aborts_loser(self, paper_interp):
        """The losing branch is abandoned: its infinite loop must not
        prevent the answer.  (Bound the machine so a regression fails
        fast instead of spinning.)"""
        from repro import Interpreter

        interp = Interpreter(quantum=1, max_steps=500_000)
        for name in ("product0", "spawn/exit", "first-true", "parallel-or"):
            interp.load_paper_example(name)
        assert (
            interp.eval(
                """
                (parallel-or 'fast
                             (let loop () (loop)))
                """
            ).name
            == "fast"
        )

    def test_parallel_search_first_hit(self, paper_interp):
        paper_interp.run("(define t (list->tree '(4 2 6 1 3 5 7)))")
        result = paper_interp.eval("(parallel-search t even?)")
        # A pair: (node . resume-thunk)
        assert paper_interp.eval("(pair? (parallel-search t even?))") is True

    def test_parallel_search_no_hit_returns_false(self, paper_interp):
        paper_interp.run("(define t2 (list->tree '(1 3 5)))")
        assert paper_interp.eval("(parallel-search t2 even?)") is False

    def test_parallel_search_resume(self, paper_interp):
        paper_interp.run("(define t3 (list->tree '(2 4)))")
        paper_interp.run("(define hit1 (parallel-search t3 even?))")
        paper_interp.run("(define hit2 ((cdr hit1)))")
        assert paper_interp.eval("(pair? hit2)") is True
        assert paper_interp.eval("(car hit1)") != paper_interp.eval("(car hit2)")
        # Third resume exhausts the tree.
        assert paper_interp.eval("((cdr hit2))") is False

    def test_search_all_finds_everything(self, paper_interp):
        paper_interp.run("(define big (list->tree '(8 4 12 2 6 10 14 1 3 5 7)))")
        found = paper_interp.eval_to_string("(search-all big even?)")
        values = sorted(int(x) for x in found.strip("()").split())
        assert values == [2, 4, 6, 8, 10, 12, 14]

    def test_search_all_empty_tree(self, paper_interp):
        assert paper_interp.eval_to_string("(search-all '() even?)") == "()"

    def test_search_all_predicate_order_independent(self, paper_interp):
        """search-all must find all matches under any scheduling."""
        from repro import Interpreter

        for seed in range(3):
            interp = Interpreter(policy="random", seed=seed)
            interp.load_paper_example("search-all")
            interp.run("(define t (list->tree '(5 3 8 1 4 7 9)))")
            found = interp.eval_to_string("(search-all t odd?)")
            values = sorted(int(x) for x in found.strip("()").split())
            assert values == [1, 3, 5, 7, 9]
