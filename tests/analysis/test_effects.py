"""The capture/effect analysis phase (repro.analysis.effects).

Three layers of coverage:

* the fact lattice itself — interning, bit packing, the fixpoint over
  program-local defines (fib stays capture-free, self-loops never prove
  total), conservatism at every unknown;
* the pump-time validator and scheduler grants — what gets an enlarged
  quantum, what must refuse one, and that grants never leak into the
  snapshot;
* the semantic gate — analysis on vs off is *zero-divergence* on
  values, output, step counts and machine stats, across engines,
  policies and quanta (the seeded random-program sweep at the bottom).
"""

import pytest

from repro import EffectInfo, Interpreter, analyze
from repro.analysis import AnalysisStats, annotate_program, single_task_form
from repro.analysis.effects import GRANT_QUANTUM
from repro.host.host import Host
from repro.host.session import Session
from repro.lib import paper_examples
from repro.snapshot import restore_session, snapshot_session

FIB = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)"


# ---------------------------------------------------------------------------
# EffectInfo: interning, bits, immutability
# ---------------------------------------------------------------------------


def test_effectinfo_interned_identity():
    a = EffectInfo(True, True, False, True)
    b = EffectInfo(True, True, False, True)
    assert a is b
    assert EffectInfo() is EffectInfo(False, False, False, False)


def test_effectinfo_bits_round_trip():
    for bits in range(16):
        info = EffectInfo.from_bits(bits)
        assert info.bits == bits
        assert EffectInfo.from_bits(info.bits) is info


def test_effectinfo_immutable():
    info = EffectInfo(True, True, True, True)
    with pytest.raises(AttributeError):
        info.capture_free = False


def test_effectinfo_repr_names_facts():
    assert "capture-free" in repr(EffectInfo(True, False, False, False))
    assert repr(EffectInfo()) == "EffectInfo(bottom)"


# ---------------------------------------------------------------------------
# The fixpoint: analyze() facts
# ---------------------------------------------------------------------------


def form_effects(report, index=-1):
    return report.forms[index].effects


def test_straight_line_arithmetic_is_pure_and_total():
    report = analyze("(+ 1 (* 2 3))")
    eff = form_effects(report)
    assert eff.capture_free and eff.spawn_free and eff.known_total
    assert report.classification == "pure"


def test_nonrecursive_define_proves_total():
    report = analyze("(define (inc x) (+ x 1)) (inc 2)")
    assert form_effects(report).known_total


def test_fib_is_capture_free_but_not_total():
    # Recursion keeps the greatest-fixpoint safety facts but the
    # least-fixpoint termination fact must not survive the cycle.
    report = analyze(FIB)
    eff = form_effects(report)
    assert eff.capture_free and eff.spawn_free
    assert not eff.known_total
    assert report.classification == "pure"


def test_self_loop_never_proves_total():
    # The form facts describe evaluating the define (closure creation —
    # total); the *lambda's* stamped facts must not claim termination.
    sess = Session(engine="resolved")
    nodes, _ = sess._frontend("(define (l) (l))")
    annotate_program(nodes, sess.globals)
    lam = nodes[0].expr
    assert lam.effects.capture_free and lam.effects.spawn_free
    assert not lam.effects.known_total


def test_callcc_kills_capture_free():
    report = analyze("(call/cc (lambda (k) (k 1)))")
    eff = form_effects(report)
    assert not eff.capture_free
    assert eff.spawn_free  # call/cc captures but forks nothing
    assert report.classification == "capture-heavy"


def test_spawn_kills_both_and_classifies_spawning():
    report = analyze("(spawn (lambda (c) (c (lambda (k) 1))))")
    eff = form_effects(report)
    assert not eff.capture_free and not eff.spawn_free
    assert report.classification == "spawning"
    assert len(report.spawn_sites) == 1
    assert eff.controller_confined  # the site is confined


def test_escaping_controller_is_not_confined():
    report = analyze("(spawn (lambda (c) c))")
    assert not form_effects(report).controller_confined


def test_pcall_kills_spawn_free_only():
    report = analyze("(pcall + 1 2)")
    eff = form_effects(report)
    assert eff.capture_free and not eff.spawn_free
    assert report.classification == "spawning"


def test_future_and_engines_kill_spawn_free():
    for src in (
        "(touch (future (lambda () 1)))",
        "(engine-run (make-engine (lambda () 1)) 100 (lambda (v f) v) (lambda (e) 'out))",
    ):
        assert not form_effects(analyze(src)).spawn_free


def test_safe_control_predicates_stay_pure():
    report = analyze("(engine? 5)")
    eff = form_effects(report)
    assert eff.capture_free and eff.spawn_free and eff.known_total


def test_computed_operator_is_bottom():
    report = analyze("((car (list (lambda (x) x))) 1)")
    eff = form_effects(report)
    assert not eff.capture_free and not eff.spawn_free


def test_set_bang_poisons_applies_through_the_cell():
    # inc is reassigned somewhere in the program, so applying through it
    # proves nothing — even in a form before the assignment.
    report = analyze(
        "(define (inc x) (+ x 1)) (inc 1) (set! inc (lambda (x) (call/cc x))) (inc 2)"
    )
    assert not form_effects(report, 1).capture_free
    assert not form_effects(report, 3).capture_free


def test_program_classification_is_worst_form():
    report = analyze("(+ 1 2) (call/cc (lambda (k) (k 1))) (spawn (lambda (c) 1))")
    assert report.classification == "spawning"
    tags = [f.tag for f in report.forms]
    assert tags == ["pure", "capture-heavy", "spawning"]


def test_annotate_stamps_lambdas_and_counts():
    sess = Session(engine="resolved")
    nodes, _ = sess._frontend("(define (sq x) (* x x)) (sq 3)")
    stats = AnalysisStats()
    report = annotate_program(nodes, sess.globals, stats)
    assert stats.forms == 2
    assert stats.lambdas == report.lambdas >= 1
    assert stats.capture_free >= 1
    # The define's lambda carries interned facts.
    lam = nodes[0].expr
    assert lam.effects is EffectInfo(True, True, True, True)


def test_summary_renders_every_form():
    text = analyze("(+ 1 2) (spawn (lambda (c) 1))").summary()
    assert "classification: spawning" in text
    assert "form 0" in text and "form 1" in text


# ---------------------------------------------------------------------------
# single_task_form: the pump-time validator
# ---------------------------------------------------------------------------


def _forms(sess, source):
    handle = sess.submit(source)
    sess.drive(handle)
    return handle.nodes


@pytest.fixture(scope="module")
def resolved_session():
    return Session(engine="resolved")


def test_validator_accepts_pure_recursion(resolved_session):
    nodes = _forms(resolved_session, FIB)
    assert single_task_form(nodes[-1], resolved_session.globals)


def test_validator_rejects_spawn_pcall_callcc(resolved_session):
    for src in (
        "(spawn (lambda (c) 1))",
        "(pcall + 1 2)",
        "(call/cc (lambda (k) (k 1)))",
    ):
        (node,) = _forms(resolved_session, src)
        assert not single_task_form(node, resolved_session.globals)


def test_validator_rejects_computed_operator(resolved_session):
    (node,) = _forms(resolved_session, "((car (list car)) '(1))")
    assert not single_task_form(node, resolved_session.globals)


def test_validator_rejects_self_mutating_form(resolved_session):
    # One form that assigns a cell it also applies through (top-level
    # begin splices, so hide the sequence inside a thunk): the walk's
    # facts would be stale by the time the redefined procedure runs.
    sess = Session(engine="resolved")
    sess.run("(define (f x) x)")
    handle = sess.submit("((lambda () (set! f (lambda (x) (call/cc x))) (f 1)))")
    node = handle.nodes[0]
    assert not single_task_form(node, sess.globals)
    sess.cancel(handle)


def test_validator_rejects_define_then_call_in_one_form(resolved_session):
    # DefineTop inside a granted form must count as mutation of the
    # defined cell (defense-in-depth; the expander normally splices
    # top-level defines into their own forms).
    from repro.ir.nodes import App, Const, DefineTop, GlobalRef, Lambda, Seq

    sess = Session(engine="resolved")
    sess.run("(define (g) 1)")
    from repro.datum import intern

    cell = sess.globals.cells[intern("g")]
    node = Seq(
        (
            DefineTop(intern("g"), Lambda((), None, Const(2), "g", 0)),
            App(GlobalRef(cell), ()),
        )
    )
    assert not single_task_form(node, sess.globals)


def test_validator_follows_current_cell_values():
    # Facts must come from the *live* closure, not the submit-time one.
    sess = Session(engine="resolved")
    sess.run("(define (f x) (+ x 1))")
    handle = sess.submit("(f 1)")
    node = handle.nodes[0]
    assert single_task_form(node, sess.globals)
    sess.drive(handle)
    sess.run("(set! f (lambda (x) (call/cc x)))")
    assert not single_task_form(node, sess.globals)


# ---------------------------------------------------------------------------
# Grants: who gets the enlarged quantum
# ---------------------------------------------------------------------------


def test_pure_form_gets_grant_and_it_never_persists():
    sess = Session(engine="compiled", quantum=16)
    before = sess.analysis_stats.grants
    sess.run(FIB)
    assert sess.analysis_stats.grants > before
    assert sess.machine.quantum_grant is None  # cleared at form end


def test_no_grants_with_analysis_off():
    sess = Session(engine="compiled", quantum=16, analysis=False)
    sess.run(FIB)
    assert sess.analysis_stats.grants == 0


def test_no_grants_under_random_policy():
    # The random policy draws from its RNG once per pick even with a
    # single runnable task, so enlarging the quantum would perturb the
    # seeded schedule of later racy forms.  FIFO only.
    sess = Session(engine="compiled", quantum=16, policy="random", seed=3)
    sess.run(FIB)
    assert sess.analysis_stats.grants == 0


def test_no_grants_when_quantum_already_large():
    sess = Session(engine="compiled", quantum=GRANT_QUANTUM)
    sess.run(FIB)
    assert sess.analysis_stats.grants == 0


def test_codegen_engine_gets_grants():
    # The grant condition unwraps code thunks via .node, so the
    # codegen engine's emitted functions qualify exactly like the
    # closure compiler's thunks do — same program, same grant count.
    compiled = Session(engine="compiled", quantum=16)
    compiled.run(FIB)
    codegen = Session(engine="codegen", quantum=16)
    codegen.run(FIB)
    assert codegen.analysis_stats.grants == compiled.analysis_stats.grants > 0
    assert codegen.machine.quantum_grant is None  # cleared at form end


@pytest.mark.parametrize("engine", ["dict", "resolved", "compiled", "codegen"])
def test_no_grants_under_random_policy_any_engine(engine):
    # Regression for the grant policy gate: the random policy draws
    # from its RNG once per pick, so an enlarged quantum would perturb
    # the seeded schedule — every engine must stay excluded, including
    # any engine added after the gate was written.
    sess = Session(engine=engine, quantum=16, policy="random", seed=3)
    sess.run(FIB)
    assert sess.analysis_stats.grants == 0


def test_dict_engine_ignores_analysis():
    sess = Session(engine="dict")
    assert sess.analysis is False
    sess.run(FIB)
    assert sess.analysis_stats.grants == 0
    assert not any(k.startswith("analysis") for k in sess.stats)


def test_stats_namespaced_only():
    interp = Interpreter()
    interp.run(FIB)
    stats = interp.stats
    assert stats["analysis.forms"] > 0
    assert "analysis_forms" not in stats  # flat aliases removed in 1.4.0
    assert stats["analysis.lambdas"] > 0
    assert stats["analysis.grants"] > 0
    off = Interpreter(analysis=False)
    off.run(FIB)
    assert not any(k.startswith("analysis") for k in off.stats)


# ---------------------------------------------------------------------------
# Request tagging and host budgeting
# ---------------------------------------------------------------------------


def test_submit_tags_handles():
    sess = Session()
    pure = sess.submit("(+ 1 2)")
    heavy = sess.submit("(call/cc (lambda (k) (k 1)))")
    spawning = sess.submit("(spawn (lambda (c) 1))")
    assert pure.classification == "pure"
    assert heavy.classification == "capture-heavy"
    assert spawning.classification == "spawning"
    assert pure.report is not None
    m = sess.metrics
    assert (m.submits_pure, m.submits_capture_heavy, m.submits_spawning) == (1, 1, 1)


def test_backlog_classification_is_worst_pending():
    sess = Session()
    assert sess.backlog_classification() == "idle"
    sess.submit("(+ 1 2)")
    assert sess.backlog_classification() == "pure"
    sess.submit("(spawn (lambda (c) 1))")
    assert sess.backlog_classification() == "spawning"
    while not sess.idle:
        sess.pump(10_000)
    assert sess.backlog_classification() == "idle"


def test_host_class_weights_budget_differently():
    host = Host(quantum=64, class_weights={"pure": 2.0, "spawning": 0.5})
    a = host.session("pure-s")
    b = host.session("spawn-s")
    a.submit("(define (lp n) (if (= n 0) 'done (lp (- n 1)))) (lp 4000)")
    b.submit("(pcall + (+ 1 2) (+ 3 4))")
    host.run_until_idle(max_ticks=200)
    assert a.idle and b.idle
    assert a.metrics.steps_served > 0 and b.metrics.steps_served > 0


def test_host_without_weights_unchanged():
    host = Host(quantum=64)
    s = host.session("plain")
    s.submit("(+ 1 2)")
    host.run_until_idle(max_ticks=50)
    assert s.idle


# ---------------------------------------------------------------------------
# Snapshot round-trip
# ---------------------------------------------------------------------------


def test_effects_and_analysis_state_survive_snapshot():
    sess = Session(engine="compiled")
    sess.run("(define (sq x) (* x x)) (sq 4)")
    blob = snapshot_session(sess)
    restored = restore_session(blob)
    assert restored.analysis is True
    for name in AnalysisStats._FIELDS:
        assert getattr(restored.analysis_stats, name) == getattr(
            sess.analysis_stats, name
        )
    from repro.datum import intern

    closure = restored.globals.cells[intern("sq")].value
    # Interned: the restored closure carries the same EffectInfo object.
    assert closure.effects is EffectInfo(True, True, True, True)
    assert restored.eval_to_string("(sq 5)") == "25"


def test_analysis_off_survives_snapshot():
    sess = Session(engine="compiled", analysis=False)
    sess.run("(define (sq x) (* x x))")
    restored = restore_session(snapshot_session(sess))
    assert restored.analysis is False
    assert restored.eval_to_string("(sq 3)") == "9"


# ---------------------------------------------------------------------------
# Spawn-site classification stability: paper examples + prelude, both
# IR dialects (pre-resolution and resolved)
# ---------------------------------------------------------------------------


def _both_dialect_classifications(source):
    from repro.analysis import analyze_spawns, analyze_source
    from repro.expander import ExpandEnv, expand_program
    from repro.ir.resolve import resolve_program
    from repro.reader import read_all

    unresolved = [s.classification for s in analyze_source(source)]
    sess = Session(engine="resolved", prelude=False)
    env = ExpandEnv()
    env.macros.update(sess.expand_env.macros)
    nodes = expand_program(read_all(source), env)
    resolved = [
        s.classification for s in analyze_spawns(resolve_program(nodes, sess.globals))
    ]
    return unresolved, resolved


@pytest.mark.parametrize("name", sorted(paper_examples.ALL))
def test_paper_example_spawn_classification_stable(name):
    source, _ = paper_examples.ALL[name]
    unresolved, resolved = _both_dialect_classifications(source)
    assert unresolved == resolved, name
    # Spot-check the safety story: classifications are from the known
    # vocabulary, deterministically.
    for c in unresolved:
        assert c in ("unused", "confined", "captured", "escaping", "opaque")


def test_prelude_spawn_classification_stable():
    from repro.lib.prelude import PRELUDE

    unresolved, resolved = _both_dialect_classifications(PRELUDE)
    assert unresolved == resolved


# ---------------------------------------------------------------------------
# Zero divergence: seeded random programs, analysis on vs off
# ---------------------------------------------------------------------------

from tests.snapshot.test_randomized import gen_program

SWEEP_QUANTA = (1, 16, 4096)


@pytest.mark.parametrize("engine", ("resolved", "compiled"))
@pytest.mark.parametrize("quantum", SWEEP_QUANTA)
def test_random_programs_zero_divergence(engine, quantum):
    for seed in (3, 17, 29):
        program = gen_program(seed)
        runs = {}
        for analysis in (True, False):
            sess = Session(engine=engine, quantum=quantum, seed=5, analysis=analysis)
            sess.submit(program)
            while not sess.idle:
                sess.pump(10_000)
            runs[analysis] = (
                sess.output_text(),
                sess.machine.steps_total,
                dict(sess.machine.stats),
            )
        assert runs[True] == runs[False], (engine, quantum, seed)
