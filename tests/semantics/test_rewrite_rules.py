"""The four rewrite rules of Section 6, exercised directly."""

import pytest

from repro.errors import StepBudgetExceeded, StuckTermError
from repro.semantics.rewrite import decompose, plug, run, step
from repro.semantics.terms import (
    App,
    Const,
    Control,
    If,
    Labeled,
    Lam,
    PrimOp,
    SPAWN,
    Var,
    term_to_str,
)

IDENTITY = Lam("x", Var("x"))


def test_rule1_beta():
    result = step(App(IDENTITY, Const(5)))
    assert result.rule == "beta"
    assert result.term == Const(5)


def test_rule2_label_return():
    result = step(Labeled(3, Const(7)))
    assert result.rule == "label-return"
    assert result.term == Const(7)


def test_rule3_control_captures_to_matching_label():
    # 1 : ((λk. 9) ↑ 1)  ⇒  (λk. 9) (λx. 1 : x)
    term = Labeled(1, Control(Lam("k", Const(9)), 1))
    result = step(term)
    assert result.rule == "control"
    assert isinstance(result.term, App)
    fn, arg = result.term.fn, result.term.arg
    assert fn == Lam("k", Const(9))
    # The captured continuation includes the label.
    assert isinstance(arg, Lam)
    assert isinstance(arg.body, Labeled)
    assert arg.body.label == 1


def test_rule3_innermost_label_wins():
    # 1 : (1 : (e ↑ 1)) — the inner label delimits.
    term = Labeled(1, Labeled(1, Control(Lam("k", Var("k")), 1)))
    result = step(term)
    # Outer label must survive in the residual program.
    assert isinstance(result.term, Labeled)
    assert result.term.label == 1


def test_rule3_no_matching_label_is_stuck():
    with pytest.raises(StuckTermError):
        step(Control(Lam("k", Const(1)), 99))


def test_rule3_label_in_non_evaluation_position_does_not_count():
    # The label inside an un-entered lambda is not part of the context.
    term = App(
        Lam("d", Control(Lam("k", Const(1)), 5)),
        Const(0),
    )
    # First step: beta; then the control is stuck (no label 5 in ctx).
    after_beta = step(term).term
    with pytest.raises(StuckTermError):
        step(after_beta)


def test_spawn_rule_shape():
    result = step(App(SPAWN, IDENTITY))
    assert result.rule == "spawn"
    assert isinstance(result.term, Labeled)
    body = result.term.expr
    assert isinstance(body, App)
    assert body.fn == IDENTITY
    # The controller: λx. x ↑ l with the new label.
    controller = body.arg
    assert isinstance(controller, Lam)
    assert isinstance(controller.body, Control)
    assert controller.body.label == result.term.label


def test_spawn_rule_fresh_label():
    # A label already in the program must not be reused.
    term = Labeled(0, App(SPAWN, IDENTITY))
    result = step(term)
    inner = result.term.expr
    assert isinstance(inner, Labeled)
    assert inner.label != 0


def test_if_rule():
    assert step(If(Const(True), Const(1), Const(2))).term == Const(1)
    assert step(If(Const(False), Const(1), Const(2))).term == Const(2)
    # Any non-False value is true (Scheme truthiness).
    assert step(If(Const(0), Const(1), Const(2))).term == Const(1)


def test_delta_rule_partial_application():
    plus = PrimOp("+", 2, lambda a, b: a + b)
    partial = step(App(plus, Const(1))).term
    assert isinstance(partial, PrimOp)
    assert partial.collected == (1,)
    full = step(App(partial, Const(2))).term
    assert full == Const(3)


def test_delta_on_non_constant_is_stuck():
    plus = PrimOp("+", 2, lambda a, b: a + b)
    with pytest.raises(StuckTermError):
        step(App(plus, IDENTITY))


def test_apply_constant_is_stuck():
    with pytest.raises(StuckTermError):
        step(App(Const(1), Const(2)))


def test_free_variable_is_stuck():
    with pytest.raises(StuckTermError):
        step(Var("ghost"))


def test_decompose_plug_roundtrip():
    term = App(App(IDENTITY, Const(1)), Const(2))
    ctx, redex = decompose(term)
    assert plug(ctx, redex) == term


def test_decompose_leftmost_outermost():
    # In (e1 e2) with both reducible, e1 is decomposed first.
    inner1 = App(IDENTITY, IDENTITY)
    inner2 = App(IDENTITY, Const(2))
    ctx, redex = decompose(App(inner1, inner2))
    assert redex == inner1


def test_decompose_value_returns_none():
    ctx, redex = decompose(Const(5))
    assert redex is None and ctx == []


def test_run_to_value():
    result = run(App(IDENTITY, Const(42)))
    assert result.value == Const(42)
    assert result.steps == 1
    assert result.rule_counts == {"beta": 1}


def test_run_step_budget():
    omega = App(Lam("x", App(Var("x"), Var("x"))), Lam("x", App(Var("x"), Var("x"))))
    with pytest.raises(StepBudgetExceeded):
        run(omega, max_steps=50)


def test_run_trace():
    result = run(App(IDENTITY, Const(1)), keep_trace=True)
    assert len(result.trace) == 2
    assert result.trace[-1] == Const(1)


def test_full_spawn_example_rewrites_to_value():
    # spawn (λc. c (λk. 9)) — controller aborts with 9.
    program = App(SPAWN, Lam("c", App(Var("c"), Lam("k", Const(9)))))
    result = run(program)
    assert result.value == Const(9)
    assert result.rule_counts["spawn"] == 1
    assert result.rule_counts["control"] == 1
