"""Differential testing: the Section 6 rewriting system against the
abstract machine, over the shared sequential fragment."""

import pytest

from repro.errors import SemanticsError
from repro.semantics import compile_source, run_both, values_agree

AGREEMENT_CASES = [
    "42",
    "#t",
    "((lambda (x) x) 7)",
    "((lambda (x y) (+ x y)) 3 4)",
    "((lambda (f) (f (f 2))) (lambda (n) (* n n)))",
    "(if (zero? 0) 'yes 'no)",
    "(if (zero? 1) 'yes 'no)",
    "(if (< 1 2) (+ 1 1) (* 2 2))",
    "(begin 1 2 3)",
    "((lambda () 5))",
    # spawn: normal return
    "(spawn (lambda (c) 42))",
    # controller abort
    "(spawn (lambda (c) (+ 1 (c (lambda (k) 5)))))",
    "(* 2 (spawn (lambda (c) (+ 1 (c (lambda (k) 10))))))",
    # reinstatement (composition)
    "(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))",
    "(spawn (lambda (c) (+ 1 (c (lambda (k) (k (k 10)))))))",
    # nested spawns
    "(spawn (lambda (a) (+ 1 (spawn (lambda (b) (b (lambda (k) 5)))))))",
    "(spawn (lambda (a) (+ 1 (spawn (lambda (b) (a (lambda (k) 5)))))))",
    # the paper's triple-controller example, applied to a constant
    "((spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) (k (lambda (k) k))))))))) 77)",
    # derived forms lower into the fragment
    "(let ([x 2] [y 3]) (* x y))",
    "(let* ([x 2] [y (+ x 1)]) y)",
    "(and 1 2)",
    "(or #f 9)",
    "(when (< 1 2) 'a)",
    "(cond [(zero? 1) 'a] [else 'b])",
]


@pytest.mark.parametrize("source", AGREEMENT_CASES)
def test_machine_agrees_with_rewriting(source):
    rewrite_result, machine_value = run_both(source)
    assert values_agree(rewrite_result.value, machine_value), (
        f"disagreement on {source}: semantics gave "
        f"{rewrite_result.value!r}, machine gave {machine_value!r}"
    )


def test_rule_counts_match_expectation():
    rewrite_result, _ = run_both("(spawn (lambda (c) (+ 1 (c (lambda (k) (k 10))))))")
    counts = rewrite_result.rule_counts
    assert counts["spawn"] == 1
    assert counts["control"] == 1
    assert counts["label-return"] >= 1  # the reinstated label returns


def test_fragment_rejects_pcall():
    with pytest.raises(SemanticsError):
        compile_source("(pcall + 1 2)")


def test_fragment_rejects_set():
    with pytest.raises(SemanticsError):
        compile_source("((lambda (x) (set! x 1)) 0)")


def test_fragment_rejects_rest_args():
    with pytest.raises(SemanticsError):
        compile_source("((lambda args args) 1)")


def test_fragment_rejects_unknown_constants():
    with pytest.raises(SemanticsError):
        compile_source("'(1 2)")


def test_machine_and_semantics_agree_on_invalid_controller():
    """Both systems reject the paper's invalid example: the rewriting
    system gets stuck on e↑l with no label; the machine raises
    DeadControllerError."""
    from repro.errors import DeadControllerError, StuckTermError
    from repro.api import Interpreter
    from repro.semantics import compile_source, rewrite_run

    source = "((spawn (lambda (c) c)) (lambda (k) k))"
    with pytest.raises(StuckTermError):
        rewrite_run(compile_source(source))
    with pytest.raises(DeadControllerError):
        Interpreter(prelude=False).eval(source)


MORE_CASES = [
    # shadowing of the controller name
    "(spawn (lambda (c) ((lambda (c) (c 5)) (lambda (x) (+ x 1)))))",
    # controller passed through a function before use
    "(spawn (lambda (c) ((lambda (use) (use c)) (lambda (cc) (+ 1 (cc (lambda (k) 3)))))))",
    # spawn in argument position
    "(+ (spawn (lambda (c) 1)) (spawn (lambda (c) (c (lambda (k) 2)))))",
    # reinstatement whose value is itself a spawn
    "(spawn (lambda (c) (+ 1 (c (lambda (k) (k (spawn (lambda (d) 5))))))))",
    # controller used in both arms of an if
    "(spawn (lambda (c) (if (zero? 0) (c (lambda (k) 1)) (c (lambda (k) 2)))))",
    # nested reinstatement: k used inside k's own resumed extent
    "(spawn (lambda (c) (+ 100 (c (lambda (k) (k (+ 1 0)))))))",
    # receiver returning a lambda (procedure answer)
    "(spawn (lambda (c) (c (lambda (k) (lambda (x) x)))))",
    # curried application chains
    "((((lambda (a) (lambda (b) (lambda (cc) (+ a (+ b cc))))) 1) 2) 3)",
]


@pytest.mark.parametrize("source", MORE_CASES)
def test_extended_corpus_agreement(source):
    rewrite_result, machine_value = run_both(source)
    assert values_agree(rewrite_result.value, machine_value), source
