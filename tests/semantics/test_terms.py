"""Term utilities: values, labels, free variables, rendering."""

from repro.semantics.terms import (
    App,
    Const,
    Control,
    If,
    Labeled,
    Lam,
    PrimOp,
    SPAWN,
    Var,
    free_vars,
    is_value,
    labels_of,
    term_size,
    term_to_str,
)


def test_values():
    assert is_value(Const(1))
    assert is_value(Lam("x", Var("x")))
    assert is_value(SPAWN)
    assert is_value(PrimOp("+", 2, lambda a, b: a + b))
    assert not is_value(Var("x"))
    assert not is_value(App(Const(1), Const(2)))
    assert not is_value(Labeled(0, Const(1)))
    assert not is_value(Control(Const(1), 0))


def test_labels_of():
    term = Labeled(1, App(Control(Var("x"), 2), Labeled(3, Const(0))))
    assert labels_of(term) == {1, 2, 3}
    assert labels_of(Const(1)) == frozenset()


def test_labels_of_under_binders():
    assert labels_of(Lam("x", Labeled(7, Var("x")))) == {7}


def test_free_vars():
    assert free_vars(Var("x")) == {"x"}
    assert free_vars(Lam("x", Var("x"))) == frozenset()
    assert free_vars(Lam("x", App(Var("x"), Var("y")))) == {"y"}
    assert free_vars(If(Var("a"), Var("b"), Var("c"))) == {"a", "b", "c"}
    assert free_vars(Labeled(0, Var("z"))) == {"z"}
    assert free_vars(Control(Var("w"), 0)) == {"w"}


def test_term_size():
    assert term_size(Const(1)) == 1
    assert term_size(App(Const(1), Const(2))) == 3
    assert term_size(Lam("x", Var("x"))) == 2


def test_term_to_str_uses_paper_notation():
    assert term_to_str(Labeled(3, Const(1))) == "(3 : 1)"
    assert "↑" in term_to_str(Control(Var("x"), 3))
    assert term_to_str(SPAWN) == "spawn"
    assert "λ" in term_to_str(Lam("x", Var("x")))
