"""Capture-avoiding substitution."""

from repro.semantics.terms import (
    App,
    Const,
    Control,
    If,
    Labeled,
    Lam,
    Var,
    free_vars,
    substitute,
)


def test_substitute_variable():
    assert substitute(Var("x"), "x", Const(1)) == Const(1)
    assert substitute(Var("y"), "x", Const(1)) == Var("y")


def test_substitute_under_application():
    term = App(Var("x"), Var("x"))
    assert substitute(term, "x", Const(2)) == App(Const(2), Const(2))


def test_shadowing_binder_blocks():
    term = Lam("x", Var("x"))
    assert substitute(term, "x", Const(1)) == term


def test_substitution_under_different_binder():
    term = Lam("y", Var("x"))
    result = substitute(term, "x", Const(1))
    assert result == Lam("y", Const(1))


def test_capture_avoidance():
    # (λy. x)[x ← y] must NOT become (λy. y).
    term = Lam("y", Var("x"))
    result = substitute(term, "x", Var("y"))
    assert isinstance(result, Lam)
    assert result.param != "y"
    assert result.body == Var("y")


def test_capture_avoidance_preserves_binding_structure():
    # (λy. y x)[x ← y]: inner bound y still refers to the binder.
    term = Lam("y", App(Var("y"), Var("x")))
    result = substitute(term, "x", Var("y"))
    assert result.body == App(Var(result.param), Var("y"))
    assert free_vars(result) == {"y"}


def test_substitute_through_labeled_and_control():
    term = Labeled(1, Control(Var("x"), 2))
    assert substitute(term, "x", Const(5)) == Labeled(1, Control(Const(5), 2))


def test_substitute_through_if():
    term = If(Var("x"), Var("x"), Var("z"))
    assert substitute(term, "x", Const(0)) == If(Const(0), Const(0), Var("z"))


def test_substitute_value_with_bound_vars_left_alone():
    value = Lam("z", Var("z"))
    term = Lam("a", Var("x"))
    result = substitute(term, "x", value)
    assert result == Lam("a", value)
