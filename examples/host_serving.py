#!/usr/bin/env python3
"""Multi-tenant serving on one thread: the host runtime demo.

Eight isolated interpreter sessions — each a full Scheme system with
its own globals and process tree — share one Python thread under a
:class:`repro.host.Host`.  The tenants run the paper's capture-heavy
programs (``sum-of-products``, ``parallel-or``: real ``pcall`` trees
with controllers and branch-local exits), suspended and resumed between
host ticks.  One tenant is a runaway loop with a per-request step
budget, one has an impossible wall-clock deadline, and one gets
cancelled mid-flight — all three die cleanly at a quantum boundary
while their neighbours' results come out exact.

Run:  python examples/host_serving.py

Exits non-zero if any well-behaved tenant's result is wrong or any
doomed tenant fails to die with the right error — the CI host-smoke
step runs this as an acceptance check.
"""

import sys

from repro import Host
from repro.errors import DeadlineExceeded, SessionCancelled, StepBudgetExceeded
from repro.host import HandleState


def main() -> int:
    host = Host(policy="deficit", quantum=256)

    # -- eight tenants, mixed workloads ---------------------------------
    expected = {}
    handles = {}
    for k in range(8):
        sess = host.session(f"tenant-{k}", quantum=4)
        if k % 2 == 0:
            sess.load_paper_example("sum-of-products")
            handles[k] = host.submit(sess, f"(sum-of-products '(1 2 3) '(4 {k} 6))")
            expected[k] = 6 + 24 * k
        else:
            sess.load_paper_example("parallel-or")
            handles[k] = host.submit(sess, f"(parallel-or #f (* {k} {k}))")
            expected[k] = k * k

    # -- three doomed requests ------------------------------------------
    runaway = host.session("runaway")
    runaway.run("(define (loop n) (loop (+ n 1)))")
    budgeted = host.submit(runaway, "(loop 0)", max_steps=10_000)

    impatient = host.session("impatient")
    impatient.run("(define (loop n) (loop (+ n 1)))")
    late = host.submit(impatient, "(loop 0)", deadline=0.05)

    flighty = host.session("flighty", quantum=4)
    flighty.run("(define (spin n) (if (= n 0) 0 (spin (- n 1))))")
    # A long pcall: both branches suspended mid-flight when the cancel
    # lands a couple of ticks in.
    doomed = host.submit(flighty, "(pcall + (spin 1000000) (spin 1000000))")

    # -- serve ----------------------------------------------------------
    print(f"serving {host.queue_depth} requests across {len(host)} sessions...")
    ticks = 0
    cancelled = False
    while not host.idle:
        host.tick()
        ticks += 1
        if ticks == 2 and not cancelled:
            doomed.cancel()  # tenant hung up mid-flight
            cancelled = True
    print(f"drained in {ticks} ticks, {host.metrics.steps_served} machine steps\n")

    # -- results --------------------------------------------------------
    failures = 0
    for k in sorted(handles):
        got = handles[k].result()
        ok = got == expected[k]
        failures += not ok
        print(f"  tenant-{k}: {got!r:8} (expected {expected[k]!r}) "
              f"[{'ok' if ok else 'WRONG'}] steps={handles[k].steps}")

    for name, handle, want in [
        ("runaway ", budgeted, StepBudgetExceeded),
        ("impatient", late, DeadlineExceeded),
        ("flighty  ", doomed, SessionCancelled),
    ]:
        exc = handle.exception()
        ok = isinstance(exc, want)
        if name.strip() == "runaway":
            ok = ok and handle.steps == 10_000  # budgets are exact
        if name.strip() == "flighty":
            ok = ok and handle.state is HandleState.CANCELLED
        failures += not ok
        print(f"  {name}: {type(exc).__name__}@{handle.steps} steps "
              f"[{'ok' if ok else 'WRONG'}]")

    # The doomed sessions are not corrupted — they keep serving:
    assert host.submit(runaway, "(+ 40 2)").result() == 42
    host.run_until_idle()

    print("\nhost counters:")
    for key, value in host.stats.items():
        print(f"  {key:32s} {value}")

    if failures:
        print(f"\n{failures} FAILURES")
        return 1
    print("\nall tenants correct; all dooms enforced cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
