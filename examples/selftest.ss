;; A self-test suite for the embedded Scheme, written IN the embedded
;; Scheme — including a tiny test framework built with spawn-based
;; exceptions.  Run it through the CLI:
;;
;;     python -m repro examples/selftest.ss
;;
;; Exercises: the macro system, control operators, futures, engines,
;; and the paper's algebraic laws.

;; --- a minimal test framework ---------------------------------------

(define passes 0)
(define failures '())

(define (check-equal! label actual expected)
  (if (equal? actual expected)
      (set! passes (+ passes 1))
      (set! failures (cons (list label 'got actual 'want expected) failures))))

(extend-syntax (check)
  [(check label expr expected) (check-equal! 'label expr expected)])

;; (check-bails! label thunk): passes iff thunk escapes via `bail`
;; rather than returning normally — a spawn-based exception check.
(define (check-bails! label thunk)
  (define outcome
    (spawn (lambda (c)
             (thunk (lambda () (c (lambda (k) 'bailed))))
             'no-bail)))
  (check-equal! label outcome 'bailed))

;; --- basic language -----------------------------------------------------

(check arithmetic (+ 1 (* 2 3) (- 10 4)) 13)
(check rationals (* 2/3 3/4) 1/2)
(check let-star (let* ([a 1] [b (+ a 1)]) (* a b)) 2)
(check named-let (let loop ([i 0] [acc 1])
                   (if (= i 5) acc (loop (+ i 1) (* acc 2)))) 32)
(check quasiquote (let ([x 2]) `(1 ,x ,@(list 3 4))) '(1 2 3 4))
(check higher-order (map (lambda (x) (* x x)) '(1 2 3)) '(1 4 9))
(check tail-loop (let l ([i 0]) (if (= i 50000) i (l (+ i 1)))) 50000)

;; --- the paper's operators ----------------------------------------------

(check spawn-return (spawn (lambda (c) 42)) 42)
(check controller-abort
       (spawn (lambda (c) (+ 1000 (c (lambda (k) 'out))))) 'out)
(check reinstatement
       (spawn (lambda (c) (* 10 (c (lambda (k) (k 4)))))) 40)
(check multi-shot
       (let ([k (spawn (lambda (c) (+ 1 (c (lambda (kk) kk)))))])
         (list (k 10) (k 20)))
       '(11 21))
(check pcall (pcall + (* 3 4) (* 5 6)) 42)
(check prompt-f (+ 1 (prompt (+ 10 (F (lambda (k) (k (k 0))))))) 21)

(check-bails! 'nonlocal-exit-fires
  (lambda (bail)
    (+ 1 (bail))  ; escapes past the pending addition
    'not-reached))

(check-bails! 'bail-from-pcall-branch
  (lambda (bail)
    (pcall + 1 (bail))
    'not-reached))

;; --- futures and engines --------------------------------------------------

(check future-touch (touch (future (lambda () (* 6 7)))) 42)
(check future-forest
       (let ([a (future (lambda () 1))] [b (future (lambda () 2))])
         (+ (touch a) (touch b)))
       3)
(check engine-completes
       (engine-run (make-engine (lambda () 'fin)) 100000
                   (lambda (v r) v) (lambda (e) 'expired))
       'fin)
(check engine-expires
       (engine-run (make-engine (lambda () (let l () (l)))) 50
                   (lambda (v r) v) (lambda (e) 'expired))
       'expired)

;; --- report ---------------------------------------------------------------

(display "selftest: ") (display passes) (display " checks passed")
(newline)
(unless (null? failures)
  (display "FAILURES:") (newline)
  (for-each (lambda (f) (display "  ") (write f) (newline)) failures)
  (error "selftest failed"))
