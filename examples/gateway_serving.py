#!/usr/bin/env python3
"""Network serving with backpressure: the gateway tier demo.

A :class:`repro.gateway.Gateway` fronts a :class:`repro.host.Host`
with an asyncio socket server speaking newline-delimited JSON
(``docs/SERVING.md``).  This demo exercises the serving surface
end-to-end over real loopback sockets:

1. three tenants talk concurrently, each keeping Scheme state in its
   own named session across requests (paper-style ``pcall`` trees);
2. a streaming submit delivers the handle's state transitions as
   ``event`` frames alongside the final value;
3. an eval error comes back as a structured ``eval-error`` reply with
   the original exception type — the session survives and answers the
   next request;
4. a tiny admission envelope (``max_inflight=3``) is deliberately
   overrun: the surplus request is *shed* with a ``busy`` reply and a
   ``retry_after_ms`` hint, nothing buffers, and honouring the hint
   gets the retry served;
5. a runaway loop is cancelled mid-flight from the client;
6. the gateway's own counters (admitted/shed/completed) are read back
   through the ``stats`` op.

Run:  python examples/gateway_serving.py

Exits non-zero if any reply is wrong at any stage — the CI
gateway-smoke step runs this as an acceptance check.
"""

import asyncio
import sys

from repro.errors import GatewayBusy, GatewayRequestError
from repro.gateway import Gateway, GatewayClient, GatewayLimits
from repro.host import Host


def check(failures: list, label: str, got, want) -> None:
    ok = got == want
    if not ok:
        failures.append(label)
    print(f"  {label:28s} {got!r:12} (expected {want!r}) [{'ok' if ok else 'WRONG'}]")


async def main_async() -> int:
    failures: list = []
    host = Host(max_pending=16)

    async with Gateway(host, limits=GatewayLimits(max_inflight=3)) as gw:
        print(f"gateway listening on {gw.host}:{gw.port}")

        # -- 1. three tenants, persistent per-session state -------------
        clients = [await GatewayClient.connect(gw.host, gw.port) for _ in range(3)]
        for k, client in enumerate(clients):
            await client.eval(
                f"tenant-{k}",
                "(define (loop n) (if (= n 0) 0 (loop (- n 1))))"
                f"(define me {k})",
                tenant=f"t{k}",
            )
        replies = await asyncio.gather(
            *(
                client.eval(
                    f"tenant-{k}",
                    "(pcall + (loop 40) (* me me) (loop 25))",
                    tenant=f"t{k}",
                )
                for k, client in enumerate(clients)
            )
        )
        for k, value in enumerate(replies):
            check(failures, f"tenant-{k} pcall", value, str(k * k))

        # -- 2. streaming state transitions ------------------------------
        client = clients[0]
        rid = await client.submit(
            "tenant-0", "(loop 2000)", tenant="t0", stream=True
        )
        states = [event["state"] async for event in client.events(rid)]
        print(f"  streamed transitions        {states}")
        if not states or states[-1] != "done":
            failures.append("stream terminal state")
        check(failures, "streamed result", await client.result(rid), "0")

        # -- 3. structured eval errors, session survives -----------------
        try:
            await client.eval("tenant-0", "(+ 1 no-such-variable)", tenant="t0")
            failures.append("eval error not raised")
        except GatewayRequestError as exc:
            check(failures, "eval error code", exc.code, "eval-error")
        check(failures, "session survives", await client.eval("tenant-0", "me"), "0")

        # -- 4. overload is shed, honouring retry_after gets served ------
        spin = "(let spin ((i 0)) (if (= i 200000) i (spin (+ i 1))))"
        blockers = [
            await client.submit("tenant-1", spin, tenant="t1"),
            await client.submit("tenant-2", spin, tenant="t2"),
            await client.submit("tenant-0", spin, tenant="t0"),
        ]
        try:
            await client.submit("tenant-0", "(+ 1 1)", tenant="t0")
            failures.append("overload not shed")
        except GatewayBusy as exc:
            print(f"  shed with retry_after_ms    {exc.retry_after_ms}")
            if exc.retry_after_ms <= 0:
                failures.append("retry_after_ms hint")
        for rid in blockers:
            await client.result(rid)
        check(
            failures, "retry served", await client.eval("tenant-0", "(+ 1 1)"), "2"
        )

        # -- 5. cancelling a runaway request -----------------------------
        rid = await client.submit(
            "tenant-0", "(let go ((i 0)) (go (+ i 1)))", tenant="t0"
        )
        check(failures, "cancel accepted", await client.cancel(rid), True)
        try:
            await client.result(rid)
            failures.append("cancelled result not raised")
        except GatewayRequestError as exc:
            check(failures, "cancelled code", exc.code, "cancelled")

        # -- 6. the gateway's own counters -------------------------------
        stats = await client.stats()
        print("\ngateway counters:")
        for key in sorted(k for k in stats if k.startswith("gateway.")):
            print(f"  {key:28s} {stats[key]}")
        if stats.get("gateway.shed", 0) < 1:
            failures.append("shed counter")
        if stats.get("gateway.completed", 0) < 8:
            failures.append("completed counter")

        for client in clients:
            await client.close()

    if failures:
        print(f"\n{len(failures)} FAILURES: {failures}")
        return 1
    print(
        "\nall replies correct through concurrent tenants, streaming, "
        "eval errors, shedding, and cancellation"
    )
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main_async()))
