#!/usr/bin/env python3
"""Coroutines from process continuations — in plain Python.

Uses the tasklet runtime (:mod:`repro.runtime`), which gives Python
code the paper's control algebra.  Demonstrates:

* a producer/consumer coroutine pair;
* the classic *same-fringe* problem — comparing the leaf sequences of
  two differently shaped trees lazily, stopping at the first mismatch;
* Multilisp-style futures (Section 8's "forest of trees").

Run:  python examples/coroutines_samefringe.py
"""

from repro.runtime import Call, Coroutine, MakeFuture, Runtime, Touch


def demo_producer_consumer() -> None:
    print("== Producer / consumer ==")

    def producer(suspend):
        for item in ["bread", "milk", "eggs"]:
            ack = yield suspend(item)
            print(f"   producer: consumer said {ack!r}")
        return "sold out"

    shop = Coroutine(producer)
    result = shop.resume()
    while not result.done:
        print(f"   consumer: buying {result.value!r}")
        result = shop.resume(f"thanks for the {result.value}")
    print(f"   shop closed: {result.value!r}\n")


def fringe_coroutine(tree):
    """A coroutine yielding the leaves of a nested-tuple tree."""

    def walker(suspend):
        def walk(node):
            if isinstance(node, tuple):
                for child in node:
                    yield Call(walk, child)
            else:
                yield suspend(node)

        yield Call(walk, tree)
        return None  # sentinel: fringe exhausted

    return Coroutine(walker)


def same_fringe(t1, t2) -> bool:
    a, b = fringe_coroutine(t1), fringe_coroutine(t2)
    while True:
        ra, rb = a.resume(), b.resume()
        if ra.done or rb.done:
            return ra.done and rb.done
        if ra.value != rb.value:
            return False


def demo_same_fringe() -> None:
    print("== Same fringe ==")
    cases = [
        (((1, 2), 3), (1, (2, 3))),
        ((1, (2, (3, 4))), (((1, 2), 3), 4)),
        ((1, 2, 3), (1, 2, 4)),
        ((1, 2), (1, 2, 3)),
    ]
    for t1, t2 in cases:
        print(f"   {t1!r:24s} vs {t2!r:24s} -> {same_fringe(t1, t2)}")
    print()


def demo_futures() -> None:
    print("== Futures: independent trees in the forest ==")

    def main():
        def crunch(label, n):
            def body():
                total = 0
                for i in range(n):
                    total += i
                    yield Call(lambda: None)
                print(f"   future {label}: done ({total})")
                return total

            return body

        ph_a = yield MakeFuture(crunch("A", 500))
        ph_b = yield MakeFuture(crunch("B", 100))
        print("   main: both futures launched, doing own work...")
        own = 0
        for i in range(50):
            own += i
            yield Call(lambda: None)
        a = yield Touch(ph_a)
        b = yield Touch(ph_b)
        return own + a + b

    total = Runtime(quantum=16).run(main)
    print(f"   grand total: {total}\n")


if __name__ == "__main__":
    demo_producer_consumer()
    demo_same_fringe()
    demo_futures()
