#!/usr/bin/env python3
"""Breadth-first search from continuations — the paper's own intro
motivation ("exception handling facilities and breadth-first searching
algorithms"), built with process continuations.

The construction: every unexplored subtree is a **paused process** —
a spawn that suspends itself through its controller *before* doing any
work.  Resuming one yields its root node plus paused processes for the
children.  The traversal order is then entirely the driver's choice of
queue discipline over those continuations:

* FIFO  → exact breadth-first (level) order;
* LIFO  → depth-first preorder;
* priority by key → best-first search.

One walker definition, three classic search strategies.  (A single
sequential walker could never do this: one continuation at a time is
stack discipline, i.e. DFS.  The frontier must *be* a collection of
continuations — which is what process continuations make cheap.)

Run:  python examples/breadth_first.py
"""

from repro import Interpreter

SCHEME = r"""
;; A paused exploration of one subtree: #f for empty, else a process
;; continuation.  Resuming it yields (node left-walker right-walker);
;; the child walkers are created already paused (no exploration
;; happens until the driver says so).
(define (make-walker t)
  (if (empty? t)
      #f
      (spawn (lambda (c)
               (c (lambda (k) k))        ; pause before any work
               (list (node t)
                     (make-walker (left t))
                     (make-walker (right t)))))))

(define (open walker) (walker 'go))
(define (kids r) (filter (lambda (x) x) (cdr r)))

;; The generic driver: `meld` decides where new frontier entries go.
(define (traverse tree meld)
  (let loop ([frontier (let ([w (make-walker tree)]) (if w (list w) '()))]
             [acc '()])
    (if (null? frontier)
        (reverse acc)
        (let ([r (open (car frontier))])
          (loop (meld (cdr frontier) (kids r))
                (cons (car r) acc))))))

(define (bfs tree) (traverse tree (lambda (rest new) (append rest new))))
(define (dfs tree) (traverse tree (lambda (rest new) (append new rest))))

;; Best-first: explore the frontier node with the smallest key next.
;; The frontier holds (key . walker) pairs sorted by key; opening a
;; walker reveals its children's keys lazily.
(define (best-first tree)
  (define (insert pq entry)
    (cond
      [(null? pq) (list entry)]
      [(< (car entry) (car (car pq))) (cons entry pq)]
      [else (cons (car pq) (insert (cdr pq) entry))]))
  (define (open-keyed w)
    (let ([r (open w)])
      (cons (car r) (kids r))))
  (let loop ([pq (let ([w (make-walker tree)])
                   (if w (list (open-keyed w)) '()))]
             [acc '()])
    (if (null? pq)
        (reverse acc)
        (let* ([entry (car pq)]
               [value (car entry)]
               [rest (fold-left
                       (lambda (q w) (insert q (open-keyed w)))
                       (cdr pq)
                       (cdr entry))])
          (loop rest (cons value acc))))))

;; Bounded search: take only n nodes, then simply drop the frontier —
;; the unexplored subtrees were never touched (count the visits!).
(define visits 0)
(define (make-counting-walker t)
  (if (empty? t)
      #f
      (spawn (lambda (c)
               (c (lambda (k) k))
               (set! visits (+ visits 1))
               (list (node t)
                     (make-counting-walker (left t))
                     (make-counting-walker (right t)))))))

(define (bfs-take tree n)
  (let loop ([frontier (let ([w (make-counting-walker tree)]) (if w (list w) '()))]
             [n n] [acc '()])
    (if (or (zero? n) (null? frontier))
        (reverse acc)
        (let ([r (open (car frontier))])
          (loop (append (cdr frontier) (kids r)) (- n 1) (cons (car r) acc))))))
"""


def main() -> None:
    interp = Interpreter(quantum=8)
    interp.run(SCHEME)

    #        8
    #      /   \
    #     4     12
    #    / \   /  \
    #   2   6 10  14   (+ leaves 1..15)
    interp.run("(define t (list->tree '(8 4 12 2 6 10 14 1 3 5 7 9 11 13 15)))")

    print("tree in-order:   ", interp.eval_to_string("(tree->list t)"))
    print("DFS  (LIFO):     ", interp.eval_to_string("(dfs t)"))
    print("BFS  (FIFO):     ", interp.eval_to_string("(bfs t)"))
    print("best-first (min):", interp.eval_to_string("(best-first t)"))
    print()
    print("One walker; the queue discipline over paused processes picks")
    print("the traversal.  (Paper §1: continuations let the programmer")
    print("build 'control structures not anticipated by the language")
    print("designer'.)")

    print("\nbounded search: first 5 nodes breadth-first —")
    print("  nodes:", interp.eval_to_string("(bfs-take t 5)"))
    print("  subtree visits performed:", interp.eval("visits"), "of 15")
    print("  (the dropped frontier was never explored)")


if __name__ == "__main__":
    main()
