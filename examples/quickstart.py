#!/usr/bin/env python3
"""Quickstart: process continuations in five minutes.

Runs through the core ideas of Hieb & Dybvig's "Continuations and
Concurrency" (PPoPP 1990) using the public API:

1. evaluate Scheme;
2. fork with ``pcall``;
3. spawn a process and abort it with its controller;
4. capture a process continuation, reinstate it (twice!);
5. see the validity rules in action.

Run:  python examples/quickstart.py
"""

from repro import DeadControllerError, Interpreter


def main() -> None:
    interp = Interpreter()

    print("== 1. An embedded Scheme ==")
    print("(+ 1 2)             =>", interp.eval("(+ 1 2)"))
    interp.run("(define (square x) (* x x))")
    print("(square 7)          =>", interp.eval("(square 7)"))
    print("(map square '(1 2 3)) =>", interp.eval_to_string("(map square '(1 2 3))"))

    print("\n== 2. Tree-structured concurrency: pcall ==")
    print("pcall evaluates operator and arguments in parallel branches")
    print("(pcall + (* 3 4) (* 5 6)) =>", interp.eval("(pcall + (* 3 4) (* 5 6))"))

    print("\n== 3. spawn: a process with a controller ==")
    value = interp.eval("(spawn (lambda (c) (* 6 7)))")
    print("normal return       =>", value)
    value = interp.eval("(spawn (lambda (c) (+ 1000 (c (lambda (k) 'aborted)))))")
    print("controller abort    =>", value, "   (the +1000 never happened)")

    print("\n== 4. Process continuations compose and are multi-shot ==")
    interp.run(
        """
        (define k    ; k = <process: (* 10 [hole])>
          (spawn (lambda (c) (* 10 (c (lambda (k) k))))))
        """
    )
    print("(k 5)               =>", interp.eval("(k 5)"))
    print("(k 12)              =>", interp.eval("(k 12)"), "  (same k, reused)")
    print("(+ 1 (k 5))         =>", interp.eval("(+ 1 (k 5))"), "  (it composes)")

    print("\n== 5. Validity: the root must be in the continuation ==")
    try:
        interp.eval("((spawn (lambda (c) c)) (lambda (k) k))")
    except DeadControllerError as exc:
        print("late controller use =>", type(exc).__name__)

    print("\n== 6. The paper's concurrent product (Section 5) ==")
    interp.load_paper_example("sum-of-products")
    print(
        "(sum-of-products '(1 2 3) '(4 0 6)) =>",
        interp.eval("(sum-of-products '(1 2 3) '(4 0 6))"),
        "  (zero branch exited early, sibling unharmed)",
    )

    print("\nMachine statistics:", interp.stats)


if __name__ == "__main__":
    main()
