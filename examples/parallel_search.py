#!/usr/bin/env python3
"""parallel-search: suspend a concurrent search, resume it on demand.

The paper's Section 5 showpiece.  A predicate search over a binary tree
runs with all branches in parallel (``pcall``); each hit *suspends the
entire search subtree* through the process controller and hands back
``(node . resume-thunk)``.  Resuming grafts the suspended search —
sibling branches at their exact progress — back into the computation.

Run:  python examples/parallel_search.py
"""

from repro import Interpreter


def main() -> None:
    interp = Interpreter(quantum=4)
    interp.load_paper_example("search-all")

    # A deterministic 15-node tree.
    interp.run("(define t (list->tree '(8 4 12 2 6 10 14 1 3 5 7 9 11 13 15)))")
    print("tree (in-order):", interp.eval_to_string("(tree->list t)"))

    print("\n== One hit at a time ==")
    interp.run("(define hit (parallel-search t even?))")
    while interp.eval("(pair? hit)"):
        print("  found:", interp.eval("(car hit)"), end="")
        captures = interp.stats["captures"]
        interp.run("(set! hit ((cdr hit)))")
        print(f"   (resumed the suspended search: capture #{captures})")
    print("  search exhausted =>", interp.eval("hit"))

    print("\n== search-all drains the generator ==")
    print("  evens:", interp.eval_to_string("(search-all t even?)"))
    print("  > 12: ", interp.eval_to_string("(search-all t (lambda (x) (> x 12)))"))
    print("  none: ", interp.eval_to_string("(search-all t (lambda (x) (> x 99)))"))

    print("\n== Early termination: take only what you need ==")
    interp.run(
        """
        (define (search-first-n tree pred? n)
          (let loop ([result (parallel-search tree pred?)] [n n] [acc '()])
            (if (or (= n 0) (not (pair? result)))
                (reverse acc)
                (loop ((cdr result)) (- n 1) (cons (car result) acc)))))
        """
    )
    print(
        "  first 3 odds:",
        interp.eval_to_string("(search-first-n t odd? 3)"),
        " — the rest of the search was simply dropped",
    )

    print("\n== Schedule independence ==")
    for seed in (1, 2, 3):
        rnd = Interpreter(policy="random", seed=seed)
        rnd.load_paper_example("search-all")
        rnd.run("(define t (list->tree '(8 4 12 2 6 10 14 1 3 5 7 9 11 13 15)))")
        found = rnd.eval("(length (search-all t even?))")
        print(f"  random seed {seed}: {found} evens found")

    print("\nstats:", interp.stats)


if __name__ == "__main__":
    main()
