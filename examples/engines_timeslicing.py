#!/usr/bin/env python3
"""Engines: preemptive time-slicing from suspension machinery.

Dybvig & Hieb derived engines from continuations ("Engines from
Continuations", reference [6] of the paper); here they come from the
tasklet runtime's process trees.  The demo builds a fair preemptive
scheduler for unequal workloads, then shows nested slicing — an engine
running engines.

Run:  python examples/engines_timeslicing.py
"""

from repro.runtime import Call
from repro.runtime.engines import make_engine, round_robin


def job(name: str, ticks: int, log: list):
    """A tasklet that reports its progress as it burns ticks."""

    def body():
        for i in range(ticks):
            if i % max(1, ticks // 4) == 0:
                log.append(f"{name}@{i}")
            yield Call(lambda: None)
        log.append(f"{name}:done")
        return name, ticks

    return body


def demo_manual_slicing() -> None:
    print("== Manual slicing ==")
    log: list = []
    engine = make_engine(job("solo", 40, log))
    slices = 0
    outcome = engine.run(15)
    while not outcome.done:
        slices += 1
        print(f"   slice {slices}: expired (mileage {engine.mileage})")
        outcome = outcome.engine.run(15)
    print(f"   finished: {outcome.value}, fuel left in last slice: "
          f"{outcome.remaining_fuel}")
    print(f"   progress log: {log}\n")


def demo_fair_scheduler() -> None:
    print("== Fair round-robin over unequal jobs ==")
    log: list = []
    engines = [
        make_engine(job("short", 30, log)),
        make_engine(job("medium", 90, log)),
        make_engine(job("long", 150, log)),
    ]
    results = round_robin(engines, fuel_each=20)
    print("   results:", results)
    done_order = [entry.split(":")[0] for entry in log if entry.endswith(":done")]
    print("   completion order:", done_order, "(shortest first — fairness)\n")


def demo_nested_engines() -> None:
    print("== An engine running engines ==")
    log: list = []

    def meta():
        # This tasklet *itself* drives two engines to completion...
        inner = [make_engine(job("inner-a", 25, log)), make_engine(job("inner-b", 25, log))]
        outcomes = [e.run(10) for e in inner]
        while not all(o.done for o in outcomes):
            outcomes = [
                o if o.done else o.engine.run(10) for o in outcomes
            ]
            yield Call(lambda: None)  # stay preemptible
        return [o.value for o in outcomes]

    # ...while being sliced by an outer engine.
    outer = make_engine(meta)
    outcome = outer.run(30)
    outer_slices = 1
    while not outcome.done:
        outcome = outcome.engine.run(30)
        outer_slices += 1
    print(f"   outer slices used: {outer_slices}")
    print(f"   inner results: {outcome.value}\n")


if __name__ == "__main__":
    demo_manual_slicing()
    demo_fair_scheduler()
    demo_nested_engines()
