#!/usr/bin/env python3
"""Sharded serving with durable sessions: the cluster tier demo.

A :class:`repro.cluster.Cluster` spreads interpreter sessions over
worker OS processes by hashing their ids, snapshots every session to a
directory store whenever it goes idle, and rehydrates from the store
on any shard.  This demo exercises the whole lifecycle:

1. six tenants served across two worker processes, each running the
   paper's capture-heavy programs (``pcall`` trees, futures);
2. a session with live cross-form machine state (a parked future)
   migrated to the other shard mid-conversation — the future's tree
   rides along inside the snapshot and ``touch`` still answers;
3. a worker killed with SIGKILL; the next request respawns it and
   replays the victim session's last snapshot — state intact;
4. the whole cluster torn down and a brand-new one pointed at the same
   directory, resuming every session from disk.

Run:  python examples/cluster_serving.py

Exits non-zero if any reply is wrong at any stage — the CI
cluster-smoke step runs this as an acceptance check.
"""

import os
import signal
import sys
import tempfile
import time

from repro.cluster import Cluster, DirectoryStore


def check(failures: list, label: str, got, want) -> None:
    ok = got == want
    if not ok:
        failures.append(label)
    print(f"  {label:24s} {got!r:10} (expected {want!r}) [{'ok' if ok else 'WRONG'}]")


def main() -> int:
    failures: list = []
    store_dir = tempfile.mkdtemp(prefix="cluster-demo-")

    with Cluster(workers=2, store=DirectoryStore(store_dir)) as cluster:
        # -- 1. sharded tenants ----------------------------------------
        print(f"serving 6 tenants across {len(cluster.shards)} worker processes...")
        for k in range(6):
            r = cluster.submit(
                f"tenant-{k}",
                "(define (loop n) (if (= n 0) 0 (loop (- n 1))))"
                f"(define me {k})"
                f"(pcall + (loop 40) (* me me) (loop 25))",
            )
            check(failures, f"tenant-{k} @shard{r.shard}", r.value, str(k * k))

        # -- 2. migrating a parked future ------------------------------
        cluster.submit(
            "futurist",
            "(define (loop n) (if (= n 0) 64 (loop (- n 1))))"
            "(define f (future (lambda () (loop 5000))))",
        )
        home = cluster.shard_for("futurist")
        away = (home + 1) % 2
        cluster.migrate("futurist", away)
        r = cluster.submit("futurist", "(touch f)")
        check(failures, f"futurist {home}->{r.shard}", r.value, "64")

        # -- 3. SIGKILL a worker; recover from the store ---------------
        victim = cluster.submit("tenant-0", "(set! me 777) me")
        print(f"\nSIGKILL worker {victim.shard} "
              f"(pid {cluster.shards[victim.shard].process.pid})...")
        os.kill(cluster.shards[victim.shard].process.pid, signal.SIGKILL)
        time.sleep(0.1)
        r = cluster.submit("tenant-0", "me")
        check(failures, f"tenant-0 recovered={r.recovered}", r.value, "777")

        print("\ncluster counters:")
        for key, value in cluster.stats.items():
            print(f"  {key:28s} {value}")

    # -- 4. resume everything from disk in a fresh cluster -------------
    print(f"\nnew cluster over {store_dir} ({len(os.listdir(store_dir))} snapshots)...")
    with Cluster(workers=2, store=DirectoryStore(store_dir)) as reborn:
        check(failures, "resumed tenant-0", reborn.submit("tenant-0", "me").value, "777")
        check(failures, "resumed tenant-5", reborn.submit("tenant-5", "me").value, "5")
        check(failures, "resumed futurist", reborn.submit("futurist", "(touch f)").value, "64")

    if failures:
        print(f"\n{len(failures)} FAILURES: {failures}")
        return 1
    print("\nall replies correct through sharding, migration, SIGKILL recovery, "
          "and cold resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
