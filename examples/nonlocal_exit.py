#!/usr/bin/env python3
"""Nonlocal exits: the Section 3 → Section 5 story, executable.

Walks through the paper's running example — the product of a list with
early exit on zero — in all four styles:

* sequential ``call/cc`` (works, Section 3);
* concurrent branch-local exit with ``spawn/exit`` (Section 5);
* concurrent *subtree* abort: one zero kills both branches
  (impossible with traditional continuations);
* a custom exception system, derived from ``spawn`` in 8 lines.

Run:  python examples/nonlocal_exit.py
"""

from repro import Interpreter


def main() -> None:
    interp = Interpreter()
    interp.load_paper_example("product-callcc")
    interp.load_paper_example("sum-of-products")
    interp.load_paper_example("product-of-products-spawn")

    print("== Sequential: product with call/cc (Section 3) ==")
    for ls in ["(1 2 3 4 5)", "(1 2 0 4 5)"]:
        print(f"(product '{ls}) =>", interp.eval(f"(product '{ls})"))
    print(
        "(product '(0 not-a-number)) =>",
        interp.eval("(product '(0 not-a-number))"),
        "  — exits before multiplying garbage",
    )

    print("\n== Concurrent, branch-local: sum-of-products (Section 5) ==")
    print(
        "(sum-of-products '(1 0 3) '(4 5)) =>",
        interp.eval("(sum-of-products '(1 0 3) '(4 5))"),
        "  — only the zero branch aborted",
    )

    print("\n== Concurrent, subtree abort: product-of-products ==")
    before = interp.stats["captures"]
    print(
        "(product-of-products/spawn '(1 0 x) '(4 5)) =>",
        interp.eval("(product-of-products/spawn '(1 0 x) '(4 5))"),
    )
    print(
        "  one controller capture aborted BOTH branches "
        f"(captures: +{interp.stats['captures'] - before})"
    )

    print("\n== An exception system from spawn ==")
    interp.run(
        """
        (define (with-handler handler thunk)
          (spawn (lambda (c)
                   (thunk (lambda (e) (c (lambda (k) (handler e))))))))
        """
    )
    print(
        interp.eval_to_string(
            """
            (with-handler
              (lambda (e) (list 'caught e))
              (lambda (raise)
                (+ 1 (if (< 1 2) (raise 'trouble) 0))))
            """
        )
    )
    print(
        interp.eval(
            """
            (with-handler
              (lambda (e) 'unused)
              (lambda (raise) (* 6 7)))
            """
        )
    )

    print("\n== Nesting: exits target exactly the level you choose ==")
    interp.load_paper_example("spawn/exit")
    for target in ("inner", "outer"):
        result = interp.eval(
            f"""
            (spawn/exit (lambda (outer)
              (+ 1 (spawn/exit (lambda (inner)
                      (+ 10 ({target} 100)))))))
            """
        )
        print(f"exit via {target}: =>", result)
        # inner exit gives 101 (the outer +1 still applies);
        # outer exit gives 100 (nothing applies).


if __name__ == "__main__":
    main()
