#!/usr/bin/env python3
"""Futures in the Scheme machine: Section 8's forest of trees.

The paper closes by noting that tree-structured and *independent*
concurrency can coexist: "one possibility is to treat such combinations
of dependent and independent processes as a forest of trees, in which
control operations affect only the tree in which they occur."  That is
exactly what the machine implements:

* ``(future thunk)`` plants a new tree and returns a placeholder;
* ``(touch ph)`` waits for it (touch of a non-placeholder is identity);
* controllers cannot cross trees;
* futures keep running across top-level forms.

Run:  python examples/futures_forest.py
"""

from repro import DeadControllerError, Interpreter


def main() -> None:
    interp = Interpreter(quantum=8)

    print("== future / touch basics ==")
    interp.run("(define ph (future (lambda () (* 6 7))))")
    print("placeholder:      ", interp.eval_to_string("ph"))
    print("(touch ph)      =>", interp.eval("(touch ph)"))
    print("(future-done? ph) =>", interp.eval("(future-done? ph)"))

    print("\n== futures overlap the main computation ==")
    interp.run(
        """
        (define progress 0)
        (define slow
          (future (lambda ()
                    (let loop ([i 0])
                      (set! progress i)
                      (if (= i 300) 'finished (loop (+ i 1)))))))
        """
    )
    # The define above returned immediately; do main-tree work and peek.
    interp.eval("(let spin ([i 0]) (if (= i 40) i (spin (+ i 1))))")
    print("future progress while main tree worked:", interp.eval("progress"))
    print("touch across top-level forms:", interp.eval_to_string("(touch slow)"))

    print("\n== fan-out: a parallel pipeline of futures ==")
    interp.run(
        """
        (define (spawn-worker n)
          (future (lambda ()
                    (let loop ([i n] [acc 0])
                      (if (zero? i) acc (loop (- i 1) (+ acc i)))))))
        (define workers (map spawn-worker '(100 200 300 400)))
        """
    )
    print(
        "sum of worker results:",
        interp.eval("(fold-left + 0 (map touch workers))"),
    )

    print("\n== control isolation between trees ==")
    try:
        interp.eval(
            """
            (spawn (lambda (c)
                     (touch (future (lambda ()
                              (c (lambda (k) 'crossed)))))))
            """
        )
    except DeadControllerError as exc:
        print("controller across trees =>", type(exc).__name__)
        print("  (the paper: 'control operations affect only the tree")
        print("   in which they occur')")

    print("\n== but spawn inside one future tree is business as usual ==")
    print(
        interp.eval_to_string(
            """
            (touch (future (lambda ()
                     (spawn (lambda (c)
                              (+ 1 (c (lambda (k) '(local exit)))))))))
            """
        )
    )


if __name__ == "__main__":
    main()
